//! Fixed-dimension vectors backed by stack arrays.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A `D`-dimensional vector of `f64`, stored inline.
///
/// This is the coordinate type used for both database points and query
/// centers throughout the workspace. All arithmetic is allocation-free.
///
/// ```
/// use gprq_linalg::Vector;
/// let a = Vector::from([3.0, 4.0]);
/// assert_eq!(a.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vector<const D: usize>(pub [f64; D]);

impl<const D: usize> Vector<D> {
    /// The zero vector.
    pub const ZERO: Self = Vector([0.0; D]);

    /// Creates a vector with every coordinate set to `value`.
    pub fn splat(value: f64) -> Self {
        Vector([value; D])
    }

    /// Creates a vector from a function of the coordinate index.
    pub fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        let mut out = [0.0; D];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        Vector(out)
    }

    /// Borrows the coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Returns the dimensionality `D`.
    pub const fn dim(&self) -> usize {
        D
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Squared Euclidean norm `‖self‖²`.
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm `‖self‖`.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn distance_squared(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Self) -> Self {
        Self::from_fn(|i| self.0[i].min(other.0[i]))
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Self) -> Self {
        Self::from_fn(|i| self.0[i].max(other.0[i]))
    }

    /// Returns `true` if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        for v in &self.0 {
            if !v.is_finite() {
                return false;
            }
        }
        true
    }

    /// Returns the unit vector in the direction of `self`.
    ///
    /// Returns `None` for the zero vector (or one with a denormal-tiny norm),
    /// where the direction is undefined.
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::MIN_POSITIVE {
            None
        } else {
            Some(*self * (1.0 / n))
        }
    }

    /// Linear interpolation `self + t · (other − self)`.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        Self::from_fn(|i| self.0[i] + t * (other.0[i] - self.0[i]))
    }
}

impl<const D: usize> Default for Vector<D> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const D: usize> From<[f64; D]> for Vector<D> {
    fn from(coords: [f64; D]) -> Self {
        Vector(coords)
    }
}

impl<const D: usize> From<Vector<D>> for [f64; D] {
    fn from(v: Vector<D>) -> Self {
        v.0
    }
}

impl<const D: usize> Index<usize> for Vector<D> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Vector<D> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Vector<D> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_fn(|i| self.0[i] + rhs.0[i])
    }
}

impl<const D: usize> AddAssign for Vector<D> {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const D: usize> Sub for Vector<D> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_fn(|i| self.0[i] - rhs.0[i])
    }
}

impl<const D: usize> SubAssign for Vector<D> {
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl<const D: usize> Mul<f64> for Vector<D> {
    type Output = Self;
    fn mul(self, s: f64) -> Self {
        Self::from_fn(|i| self.0[i] * s)
    }
}

impl<const D: usize> Neg for Vector<D> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::from_fn(|i| -self.0[i])
    }
}

impl<const D: usize> fmt::Display for Vector<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_splat() {
        assert_eq!(Vector::<3>::ZERO.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::<2>::splat(2.5).as_slice(), &[2.5, 2.5]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from([1.0, 2.0, 3.0]);
        let b = Vector::from([4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
        assert_eq!(Vector::from([3.0, 4.0]).norm(), 5.0);
        assert_eq!(a.norm_squared(), 14.0);
    }

    #[test]
    fn distances() {
        let a = Vector::from([0.0, 0.0]);
        let b = Vector::from([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from([1.0, 2.0]);
        let b = Vector::from([3.0, 5.0]);
        assert_eq!((a + b).as_slice(), &[4.0, 7.0]);
        assert_eq!((b - a).as_slice(), &[2.0, 3.0]);
        assert_eq!((a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-a).as_slice(), &[-1.0, -2.0]);
        let mut c = a;
        c += b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn component_min_max() {
        let a = Vector::from([1.0, 5.0]);
        let b = Vector::from([3.0, 2.0]);
        assert_eq!(a.min(&b).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.max(&b).as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vector::from([3.0, 4.0]).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::<2>::ZERO.normalized().is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vector::from([0.0, 10.0]);
        let b = Vector::from([10.0, 0.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5).as_slice(), &[5.0, 5.0]);
    }

    #[test]
    fn finiteness_check() {
        assert!(Vector::from([1.0, 2.0]).is_finite());
        assert!(!Vector::from([f64::NAN, 0.0]).is_finite());
        assert!(!Vector::from([f64::INFINITY, 0.0]).is_finite());
    }

    #[test]
    fn indexing_and_display() {
        let mut v = Vector::from([1.0, 2.0]);
        v[1] = 9.0;
        assert_eq!(v[1], 9.0);
        assert_eq!(v.to_string(), "(1, 9)");
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1.0e3..1.0e3
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(
            a in [coord(), coord(), coord()],
            b in [coord(), coord(), coord()],
            c in [coord(), coord(), coord()],
        ) {
            let (a, b, c) = (Vector(a), Vector(b), Vector(c));
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn prop_cauchy_schwarz(a in [coord(), coord()], b in [coord(), coord()]) {
            let (a, b) = (Vector(a), Vector(b));
            prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-6);
        }

        #[test]
        fn prop_add_sub_roundtrip(a in [coord(), coord()], b in [coord(), coord()]) {
            let (a, b) = (Vector(a), Vector(b));
            let r = (a + b) - b;
            for i in 0..2 {
                prop_assert!((r[i] - a[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_norm_scaling(a in [coord(), coord()], s in -100.0..100.0f64) {
            let a = Vector(a);
            prop_assert!(((a * s).norm() - s.abs() * a.norm()).abs() < 1e-6);
        }
    }
}
