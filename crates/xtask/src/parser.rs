//! A recursive-descent item parser over the lexed token stream.
//!
//! PR 1's auditor pattern-matched flat token windows, which cannot see
//! *through* a function boundary: a panic hidden behind a helper call, or
//! an allocation two calls below a hot loop, was invisible. This module
//! recovers enough syntactic structure for the call-graph rules of
//! [`crate::callgraph`]:
//!
//! * items — `fn` (free, impl, trait-default, nested), `impl` blocks with
//!   their self type, `trait`/`mod` scopes, `enum` variants;
//! * per-function facts — visibility, `self` parameter, `&mut` reference
//!   parameters (the buffer-reuse exemption of the `hot-path-alloc`
//!   rule), whether the return type mentions `Result`, body token range;
//! * per-function *call sites* — free calls, `Path::calls` (with one
//!   qualifying segment), `.method(...)` calls (with the receiver ident
//!   when it is simple), and `macro!` invocations;
//! * doc facts from the raw source — `# Errors` / `# Panics` sections and
//!   the `// HOT-PATH:` marker convention (mirroring `// INVARIANT:`).
//!
//! Still no `syn` in the offline build environment, so the parser is
//! hand-rolled and *forgiving*: unknown constructs are skipped token by
//! token, and a file the parser cannot make sense of degrades to "no
//! items found" rather than an error — the auditor must never fail on
//! user source.

use crate::lexer::{Tok, TokKind};

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// `true` when the parameter type starts with `&mut` — the
    /// caller-owned-buffer shape the `hot-path-alloc` rule exempts.
    pub by_mut_ref: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — unqualified.
    Free,
    /// `Qual::foo(...)` — one qualifying segment retained.
    Path,
    /// `recv.foo(...)`.
    Method,
    /// `foo!(...)` — macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// Qualifying segment for [`CallKind::Path`] calls (`Vec` in
    /// `Vec::new`), if present.
    pub qual: Option<String>,
    /// Receiver identifier for [`CallKind::Method`] calls when the
    /// receiver is a plain identifier or field (`out` in `out.push(x)`
    /// and in `self.out.push(x)`).
    pub receiver: Option<String>,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
    /// Token-index range of the argument list `( ... )` (inclusive
    /// delimiters), when the call has one. Macros keep the range of
    /// their delimiter group regardless of delimiter style.
    pub args_range: Option<(usize, usize)>,
}

/// One closure expression inside a function body (`|x| x + 1`,
/// `move || { ... }`). The dataflow rules need these to check the
/// bodies passed to retrying combinators for purity.
#[derive(Debug, Clone)]
pub struct ClosureInfo {
    /// 1-based line of the opening `|`.
    pub line: usize,
    /// Parameter binding names, in order.
    pub params: Vec<String>,
    /// Token-index range `[lo, hi)` of the closure body (exclusive of
    /// the braces for block bodies).
    pub body: (usize, usize),
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self type or `trait` name, when any.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared with `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Lexically inside a `#[cfg(test)]` region or `#[test]` item.
    pub in_test: bool,
    /// Takes a `self` parameter (method).
    pub has_self: bool,
    /// Return type mentions `Result`.
    pub returns_result: bool,
    /// Parameters, in order (excluding `self`).
    pub params: Vec<Param>,
    /// Token-index range of the body `{ ... }` (inclusive braces), when
    /// the function has one.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<Call>,
    /// Closure expressions inside the body (excluding nested `fn`
    /// items' bodies), in source order.
    pub closures: Vec<ClosureInfo>,
    /// A `// RETRY-SAFE:` marker is attached above the item — the body
    /// must satisfy the `retry-purity` rule.
    pub retry_safe: bool,
    /// Doc block above the item contains an `# Errors` section.
    pub doc_has_errors: bool,
    /// Doc block above the item contains a `# Panics` section.
    pub doc_has_panics: bool,
    /// Text of a `// HOT-PATH:` marker attached above the item, if any.
    pub hot_marker: Option<String>,
    /// Declared `unsafe fn` (the `unsafe` keyword is a modifier of this
    /// item, not a block inside it).
    pub is_unsafe: bool,
}

/// One parsed `impl` block header (what the `send-sync-audit` rule
/// needs: `unsafe impl Send for T` must be visible as a structured
/// fact, not a token window).
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Declared `unsafe impl`.
    pub is_unsafe: bool,
    /// Trait being implemented (`Send` in `unsafe impl Send for T`),
    /// when this is a trait impl.
    pub trait_name: Option<String>,
    /// Self type (`T` in `impl Trait for T` / `impl T`).
    pub self_ty: Option<String>,
    /// Lexically inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Classification of one `unsafe` keyword occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { ... }` block.
    Block,
    /// `unsafe fn` (including `unsafe extern "C" fn`).
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
}

impl UnsafeKind {
    /// Stable lowercase label (used in reports and marker snapshots).
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
        }
    }
}

/// One `unsafe` occurrence — the workspace-wide inventory the
/// `unsafe-safety-comment` rule audits and `audit-markers.txt`
/// snapshots. Collected by a flat token scan, so nested blocks
/// (`unsafe { unsafe { } }`) each get their own site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// What the keyword introduces.
    pub kind: UnsafeKind,
    /// Trimmed source line text.
    pub snippet: String,
    /// Lexically inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One parsed `enum` item (only what the `error-docs` rule needs).
#[derive(Debug, Clone)]
pub struct EnumInfo {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names in declaration order, with their 1-based lines.
    pub variants: Vec<(String, usize)>,
}

/// An indexed `// HOT-PATH:` marker (mirrors `InvariantMarker`).
#[derive(Debug, Clone)]
pub struct HotPathMarker {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Marker text after `HOT-PATH:`.
    pub text: String,
    /// Qualified name of the function the marker attaches to (the next
    /// `fn` within the attachment window), if any.
    pub attached_fn: Option<String>,
}

/// One `Qual::name` reference anywhere in a file (the `error-docs`
/// variant-construction check consumes these).
#[derive(Debug, Clone)]
pub struct QualRef {
    /// Qualifying segment (`PrqError` in `PrqError::InvalidTheta`).
    pub qual: String,
    /// Referenced name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Inside a `#[cfg(test)]` region or `#[test]` item.
    pub in_test: bool,
    /// Heuristically in pattern position (match arm / `let` binding)
    /// rather than construction position.
    pub is_pattern: bool,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// All function items, including nested and test functions.
    pub fns: Vec<FnInfo>,
    /// All enum items.
    pub enums: Vec<EnumInfo>,
    /// All `impl` block headers.
    pub impls: Vec<ImplInfo>,
    /// All `// HOT-PATH:` markers.
    pub hot_markers: Vec<HotPathMarker>,
    /// All `Qual::name` references.
    pub qual_refs: Vec<QualRef>,
    /// All `unsafe` occurrences (blocks, fns, impls, traits).
    pub unsafe_sites: Vec<UnsafeSite>,
}

impl FnInfo {
    /// `Qual::name` when a qualifier exists, else the bare name.
    pub fn qual_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "dyn", "impl", "where", "unsafe", "box", "await",
];

/// Parses one file. `path` is recorded into every item; `source` is the
/// raw text (for doc/marker line scans); `toks` its lexed form.
pub fn parse_file(path: &str, source: &str, toks: &[Tok]) -> FileAnalysis {
    let lines: Vec<&str> = source.lines().collect();
    let test_regions = crate::rules::test_regions(toks);
    let mut out = FileAnalysis::default();
    let mut p = Parser {
        path,
        toks,
        lines: &lines,
        test_regions: &test_regions,
        out: &mut out,
    };
    p.items(0, toks.len(), None, false);
    attach_hot_markers(path, &lines, &mut out);
    attach_retry_safe_markers(&lines, &mut out);
    collect_qual_refs(toks, &test_regions, &mut out.qual_refs);
    collect_unsafe_sites(path, &lines, toks, &test_regions, &mut out.unsafe_sites);
    out
}

/// Inventories every `unsafe` keyword by a flat token scan (string
/// literals are already collapsed by the lexer, so `"unsafe"` in a
/// string never matches). Classification looks at the next meaningful
/// token: `fn` (skipping an `extern "ABI"` prefix), `impl`, `trait`, or
/// a `{` opening an unsafe block.
fn collect_unsafe_sites(
    path: &str,
    lines: &[&str],
    toks: &[Tok],
    test_regions: &[(usize, usize)],
    out: &mut Vec<UnsafeSite>,
) {
    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        // `unsafe extern "C" fn` — step over the ABI prefix.
        let mut j = i + 1;
        if text(j) == "extern" {
            j += 1;
            if toks.get(j).is_some_and(|t| t.kind == TokKind::StrLit) {
                j += 1;
            }
        }
        let kind = match text(j) {
            "fn" => UnsafeKind::Fn,
            "impl" => UnsafeKind::Impl,
            "trait" => UnsafeKind::Trait,
            // `unsafe {` and anything unrecognized (e.g. a future
            // edition's syntax) audits as a block — the conservative
            // default: it still demands a SAFETY comment.
            _ => UnsafeKind::Block,
        };
        out.push(UnsafeSite {
            path: path.to_owned(),
            line: tok.line,
            kind,
            snippet: lines
                .get(tok.line.saturating_sub(1))
                .map_or_else(|| "unsafe".to_owned(), |l| l.trim().to_owned()),
            in_test: test_regions.iter().any(|&(a, b)| i >= a && i <= b),
        });
    }
}

/// Collects every `// HOT-PATH:` line, attaches each to the first `fn`
/// in the parsed set that starts within the window below it, and marks
/// that function as a hot root. The window-based attachment (not
/// doc-block contiguity) is authoritative, mirroring `// INVARIANT:`.
fn attach_hot_markers(path: &str, lines: &[&str], out: &mut FileAnalysis) {
    /// A marker must sit within this many lines above its function
    /// (same window as the `// INVARIANT:` rule).
    const WINDOW: usize = 16;
    for (idx, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find("// HOT-PATH:") else {
            continue;
        };
        let line = idx + 1;
        let text = raw[pos + "// HOT-PATH:".len()..].trim().to_owned();
        let attached = out
            .fns
            .iter_mut()
            .filter(|f| f.line > line && f.line <= line + WINDOW)
            .min_by_key(|f| f.line);
        let attached_fn = attached.map(|f| {
            if f.hot_marker.is_none() {
                f.hot_marker = Some(text.clone());
            }
            f.qual_name()
        });
        out.hot_markers.push(HotPathMarker {
            path: path.to_owned(),
            line,
            text,
            attached_fn,
        });
    }
}

/// Marks every function carrying a `// RETRY-SAFE:` marker within the
/// attachment window above it (same convention as `// HOT-PATH:`). A
/// marked function promises its body is pure enough to re-execute
/// arbitrarily many times; the `retry-purity` rule verifies the claim.
fn attach_retry_safe_markers(lines: &[&str], out: &mut FileAnalysis) {
    /// Same window as `// HOT-PATH:` / `// INVARIANT:` attachment.
    const WINDOW: usize = 16;
    for (idx, raw) in lines.iter().enumerate() {
        if !raw.contains("// RETRY-SAFE:") {
            continue;
        }
        let line = idx + 1;
        if let Some(f) = out
            .fns
            .iter_mut()
            .filter(|f| f.line > line && f.line <= line + WINDOW)
            .min_by_key(|f| f.line)
        {
            f.retry_safe = true;
        }
    }
}

/// Scans the whole token stream for `Ident :: Ident` references,
/// classifying pattern vs. construction position heuristically: the
/// token after the reference (skipping one balanced payload group) is
/// `=>` or `|`, or the reference follows a `let`, in pattern position.
fn collect_qual_refs(toks: &[Tok], test_regions: &[(usize, usize)], out: &mut Vec<QualRef>) {
    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || text(i + 1) != "::"
            || toks.get(i + 2).map_or(true, |t| t.kind != TokKind::Ident)
        {
            continue;
        }
        // Skip the middle of longer paths (`a::b::c` records only `b::c`).
        if i >= 2 && text(i - 1) == "::" {
            continue;
        }
        let name_idx = i + 2;
        // Position after the reference and one optional payload group.
        let mut after = name_idx + 1;
        if text(after) == "(" || text(after) == "{" {
            let (open, close) = if text(after) == "(" {
                ("(", ")")
            } else {
                ("{", "}")
            };
            let mut depth = 0usize;
            while after < toks.len() {
                if text(after) == open {
                    depth += 1;
                } else if text(after) == close {
                    depth -= 1;
                    if depth == 0 {
                        after += 1;
                        break;
                    }
                }
                after += 1;
            }
        }
        let is_pattern = matches!(text(after), "=>" | "|") || (i >= 1 && text(i - 1) == "let");
        let in_test = test_regions.iter().any(|&(a, b)| i >= a && i <= b);
        out.push(QualRef {
            qual: toks[i].text.clone(),
            name: toks[name_idx].text.clone(),
            line: toks[name_idx].line,
            in_test,
            is_pattern,
        });
    }
}

struct Parser<'a> {
    path: &'a str,
    toks: &'a [Tok],
    lines: &'a [&'a str],
    test_regions: &'a [(usize, usize)],
    out: &'a mut FileAnalysis,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// Index of the token after the matching close of the delimiter
    /// opening at `i` (`{`/`(`/`[`). Returns `end` if unbalanced.
    fn skip_delim(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skips a generic parameter list starting at the `<` at `i`;
    /// returns the index after the matching `>`. Angle depth ignores
    /// `->` / `=>` (distinct tokens in the lexer).
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A shift such as `1 << 2` never appears in the generic
                // positions we skip from; treat `<=`/`>=` as opaque.
                ";" | "{" => return j, // bail out: malformed generics
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parses items in `[start, end)`, with `qual` the enclosing
    /// `impl`/`trait` name and `in_trait_or_impl` controlling whether a
    /// bare `fn` belongs to that scope.
    fn items(&mut self, start: usize, end: usize, qual: Option<&str>, in_trait_or_impl: bool) {
        let mut i = start;
        let mut pending_pub = false;
        let mut pending_unsafe = false;
        while i < end {
            let t = self.text(i);
            match t {
                "#" if self.text(i + 1) == "[" => {
                    i = self.skip_delim(i + 1, end, "[", "]");
                }
                "pub" => {
                    pending_pub = true;
                    i += 1;
                    // `pub(crate)` / `pub(in path)`.
                    if self.text(i) == "(" {
                        i = self.skip_delim(i, end, "(", ")");
                    }
                }
                // `unsafe` attaches as a modifier to the next `fn` /
                // `impl` / `trait` item (or opens an `unsafe { }` block
                // in statement position — consumed here so the block is
                // not mistaken for an item body).
                "unsafe" => {
                    pending_unsafe = true;
                    i += 1;
                    if self.text(i) == "{" {
                        // An `unsafe { ... }` block: its contents are
                        // scanned for nested items like any other range.
                        let close = self.skip_delim(i, end, "{", "}");
                        self.items(i + 1, close.saturating_sub(1), qual, false);
                        i = close;
                        pending_unsafe = false;
                    }
                }
                // Other modifiers that may precede `fn`.
                "const" | "async" | "extern" | "default" => {
                    i += 1;
                    // `extern "C"` — the ABI string literal.
                    if self.toks.get(i).is_some_and(|x| x.kind == TokKind::StrLit) {
                        i += 1;
                    }
                    // A `const NAME: ...;` item rather than `const fn`.
                    if t == "const" && !self.is_ident(i, "fn") {
                        i = self.skip_to_semi_or_block(i, end);
                        pending_pub = false;
                        pending_unsafe = false;
                    }
                }
                "fn" => {
                    i = self.parse_fn(i, end, qual, in_trait_or_impl, pending_pub, pending_unsafe);
                    pending_pub = false;
                    pending_unsafe = false;
                }
                "impl" => {
                    i = self.parse_impl(i, end, pending_unsafe);
                    pending_pub = false;
                    pending_unsafe = false;
                }
                "trait" => {
                    let name = self.text(i + 1).to_owned();
                    i = self.parse_braced_scope(i + 2, end, Some(&name));
                    pending_pub = false;
                    pending_unsafe = false;
                }
                "mod" => {
                    // `mod name;` or `mod name { ... }`.
                    let mut j = i + 2;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.skip_delim(j, end, "{", "}");
                        self.items(j + 1, close.saturating_sub(1), None, false);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    pending_pub = false;
                    pending_unsafe = false;
                }
                "enum" => {
                    i = self.parse_enum(i, end, pending_pub);
                    pending_pub = false;
                    pending_unsafe = false;
                }
                "struct" | "union" | "use" | "static" | "type" | "macro_rules" => {
                    i = self.skip_to_semi_or_block(i + 1, end);
                    pending_pub = false;
                    pending_unsafe = false;
                }
                _ => {
                    i += 1;
                    pending_pub = false;
                    pending_unsafe = false;
                }
            }
        }
    }

    /// From `i`, advances past the next `;` at depth 0 or past a `{...}`
    /// block, whichever comes first (item tail skipping).
    fn skip_to_semi_or_block(&self, i: usize, end: usize) -> usize {
        let mut j = i;
        while j < end {
            match self.text(j) {
                ";" => return j + 1,
                "{" => return self.skip_delim(j, end, "{", "}"),
                "(" => j = self.skip_delim(j, end, "(", ")"),
                "[" => j = self.skip_delim(j, end, "[", "]"),
                _ => j += 1,
            }
        }
        end
    }

    /// Parses `impl<G> Type { ... }` / `impl<G> Trait for Type { ... }`,
    /// returning the index after the block. Records an [`ImplInfo`] for
    /// the header (with `is_unsafe` from the preceding modifier).
    fn parse_impl(&mut self, i: usize, end: usize, is_unsafe: bool) -> usize {
        let mut j = i + 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        // Scan the header for `for` at angle-depth 0 and remember the
        // first identifier after it (the self type); otherwise the first
        // identifier of the header.
        let mut self_ty: Option<String> = None;
        let mut first_ident: Option<String> = None;
        let mut after_for = false;
        let mut depth = 0isize;
        while j < end {
            let t = self.text(j);
            match t {
                "{" | ";" => break,
                "<" => depth += 1,
                ">" => depth -= 1,
                "for" if depth == 0 => after_for = true,
                _ => {
                    if self.toks[j].kind == TokKind::Ident && !matches!(t, "dyn" | "mut") {
                        if after_for && self_ty.is_none() {
                            self_ty = Some(t.to_owned());
                        }
                        if first_ident.is_none() {
                            first_ident = Some(t.to_owned());
                        }
                        // Skip the rest of a path segment so `where`
                        // clauses' type paths don't overwrite anything.
                    }
                }
            }
            j += 1;
        }
        // With a `for` clause the first header identifier is the trait
        // and the identifier after `for` the self type; without one the
        // first identifier is the self type (inherent impl).
        let (trait_name, resolved_self_ty) = if after_for {
            (first_ident.clone(), self_ty.clone())
        } else {
            (None, first_ident.clone())
        };
        self.out.impls.push(ImplInfo {
            path: self.path.to_owned(),
            line: self.toks.get(i).map_or(0, |t| t.line),
            is_unsafe,
            trait_name,
            self_ty: resolved_self_ty,
            in_test: self.in_test(i),
        });
        let qual = self_ty.or(first_ident);
        if self.text(j) == "{" {
            let close = self.skip_delim(j, end, "{", "}");
            self.items(j + 1, close.saturating_sub(1), qual.as_deref(), true);
            close
        } else {
            j + 1
        }
    }

    /// Parses a `trait Name { ... }` scope at the token after the name.
    fn parse_braced_scope(&mut self, i: usize, end: usize, qual: Option<&str>) -> usize {
        let mut j = i;
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            if self.text(j) == "<" {
                j = self.skip_angles(j, end);
            } else {
                j += 1;
            }
        }
        if self.text(j) == "{" {
            let close = self.skip_delim(j, end, "{", "}");
            self.items(j + 1, close.saturating_sub(1), qual, true);
            close
        } else {
            j + 1
        }
    }

    /// Parses `enum Name<G> { Variant, Variant(..), Variant{..} }`.
    fn parse_enum(&mut self, i: usize, end: usize, _is_pub: bool) -> usize {
        let name = self.text(i + 1).to_owned();
        let line = self.toks.get(i).map_or(0, |t| t.line);
        let mut j = i + 2;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1;
        }
        let close_after = self.skip_delim(j, end, "{", "}");
        let body_end = close_after.saturating_sub(1);
        let mut variants = Vec::new();
        let mut k = j + 1;
        let mut expect_variant = true;
        while k < body_end {
            match self.text(k) {
                "#" if self.text(k + 1) == "[" => {
                    k = self.skip_delim(k + 1, body_end, "[", "]");
                }
                "(" => k = self.skip_delim(k, body_end, "(", ")"),
                "{" => k = self.skip_delim(k, body_end, "{", "}"),
                "," => {
                    expect_variant = true;
                    k += 1;
                }
                "=" => {
                    // Discriminant: skip to comma.
                    while k < body_end && self.text(k) != "," {
                        k += 1;
                    }
                }
                _ => {
                    if expect_variant && self.toks[k].kind == TokKind::Ident {
                        variants.push((self.text(k).to_owned(), self.toks[k].line));
                        expect_variant = false;
                    }
                    k += 1;
                }
            }
        }
        self.out.enums.push(EnumInfo {
            path: self.path.to_owned(),
            name,
            line,
            variants,
        });
        close_after
    }

    /// Parses a `fn` item whose `fn` keyword sits at `i`; returns the
    /// index after the item (past the body or the `;`).
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        qual: Option<&str>,
        _in_scope: bool,
        is_pub: bool,
        is_unsafe: bool,
    ) -> usize {
        let name_idx = i + 1;
        if self
            .toks
            .get(name_idx)
            .map_or(true, |t| t.kind != TokKind::Ident)
        {
            // `fn(...)` pointer type or malformed — not an item.
            return i + 1;
        }
        let name = self.text(name_idx).to_owned();
        let line = self.toks[i].line;
        let mut j = name_idx + 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j, end);
        }
        // Parameter list.
        let mut params = Vec::new();
        let mut has_self = false;
        if self.text(j) == "(" {
            let close_after = self.skip_delim(j, end, "(", ")");
            let params_end = close_after.saturating_sub(1);
            self.parse_params(j + 1, params_end, &mut params, &mut has_self);
            j = close_after;
        }
        // Return type.
        let mut returns_result = false;
        if self.text(j) == "->" {
            j += 1;
            let mut depth = 0isize;
            while j < end {
                let t = self.text(j);
                match t {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "{" | ";" if depth <= 0 => break,
                    "where" if depth <= 0 => break,
                    _ => {
                        if self.toks[j].kind == TokKind::Ident && t == "Result" {
                            returns_result = true;
                        }
                    }
                }
                j += 1;
            }
        }
        // Where clause.
        while j < end && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        // Body.
        let (body, after) = if self.text(j) == "{" {
            let close_after = self.skip_delim(j, end, "{", "}");
            (Some((j, close_after.saturating_sub(1))), close_after)
        } else {
            (None, j + 1)
        };
        let mut calls = Vec::new();
        let mut closures = Vec::new();
        if let Some((open, close)) = body {
            self.collect_calls(open + 1, close, &mut calls);
            self.collect_closures(open + 1, close, &mut closures);
            // Nested items (closures need no recursion — their calls are
            // part of this body; nested `fn` items are parsed as their
            // own functions *and* their calls excluded from this one).
            self.parse_nested_fns(open + 1, close, qual);
        }
        let (doc_has_errors, doc_has_panics) = self.doc_facts(line);
        self.out.fns.push(FnInfo {
            path: self.path.to_owned(),
            name,
            qual: qual.map(str::to_owned),
            line,
            is_pub,
            in_test: self.in_test(i),
            has_self,
            returns_result,
            params,
            body,
            calls,
            closures,
            // Filled in by `attach_retry_safe_markers` after parsing.
            retry_safe: false,
            doc_has_errors,
            doc_has_panics,
            // Filled in by `attach_hot_markers` after item parsing.
            hot_marker: None,
            is_unsafe,
        });
        after
    }

    /// Recursively parses `fn` items nested inside a body range.
    fn parse_nested_fns(&mut self, start: usize, end: usize, qual: Option<&str>) {
        let mut i = start;
        while i < end {
            if self.is_ident(i, "fn")
                && self
                    .toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident)
            {
                let is_unsafe = i > start && self.is_ident(i - 1, "unsafe");
                i = self.parse_fn(i, end, qual, false, false, is_unsafe);
            } else {
                i += 1;
            }
        }
    }

    /// Splits a parameter list token range into [`Param`]s.
    fn parse_params(&self, start: usize, end: usize, params: &mut Vec<Param>, has_self: &mut bool) {
        let mut i = start;
        while i < end {
            // One parameter: up to a comma at depth 0.
            let mut j = i;
            let mut depth = 0isize;
            while j < end {
                match self.text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            // Inspect the parameter tokens [i, j).
            let slice: Vec<&str> = (i..j).map(|k| self.text(k)).collect();
            if slice.contains(&"self") {
                *has_self = true;
            } else if !slice.is_empty() {
                // Binding name: first identifier before the top-level
                // `:` (skipping `mut`); `_` patterns produce no param.
                let colon = slice.iter().position(|t| *t == ":");
                let head = &slice[..colon.unwrap_or(slice.len())];
                let name = head
                    .iter()
                    .find(|t| {
                        !matches!(**t, "mut" | "ref" | "&" | "(" | ")")
                            && t.chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                    })
                    .copied()
                    .unwrap_or("")
                    .to_owned();
                let by_mut_ref = colon.is_some_and(|c| {
                    slice.get(c + 1) == Some(&"&")
                        && (slice.get(c + 2) == Some(&"mut")
                            // `&'a mut T`
                            || slice.get(c + 3) == Some(&"mut"))
                });
                if !name.is_empty() && name != "_" {
                    params.push(Param { name, by_mut_ref });
                }
            }
            i = j + 1;
        }
    }

    /// Collects call sites in a body token range. Nested `fn` item
    /// bodies are excluded (their calls belong to the nested item).
    fn collect_calls(&self, start: usize, end: usize, out: &mut Vec<Call>) {
        let mut i = start;
        while i < end {
            // Exclude nested fn items.
            if self.is_ident(i, "fn")
                && self
                    .toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident)
            {
                // Skip to past the nested body.
                let mut j = i;
                while j < end && self.text(j) != "{" && self.text(j) != ";" {
                    j += 1;
                }
                i = if self.text(j) == "{" {
                    self.skip_delim(j, end, "{", "}")
                } else {
                    j + 1
                };
                continue;
            }
            let tok = &self.toks[i];
            if tok.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&tok.text.as_str()) {
                let prev = i.checked_sub(1).map(|p| self.text(p)).unwrap_or("");
                // Position after an optional turbofish.
                let mut after = i + 1;
                if self.text(after) == "::" && self.text(after + 1) == "<" {
                    after = self.skip_angles(after + 1, end);
                }
                let next = self.text(after);
                if next == "!" && self.text(after + 1) != "=" {
                    let args_range = match self.text(after + 1) {
                        "(" => Some((after + 1, self.skip_delim(after + 1, end, "(", ")"))),
                        "[" => Some((after + 1, self.skip_delim(after + 1, end, "[", "]"))),
                        "{" => Some((after + 1, self.skip_delim(after + 1, end, "{", "}"))),
                        _ => None,
                    }
                    .map(|(lo, past)| (lo, past.saturating_sub(1)));
                    out.push(Call {
                        name: tok.text.clone(),
                        qual: None,
                        receiver: None,
                        kind: CallKind::Macro,
                        line: tok.line,
                        args_range,
                    });
                } else if next == "(" {
                    let close = self.skip_delim(after, end, "(", ")").saturating_sub(1);
                    let args_range = Some((after, close));
                    if prev == "." {
                        let receiver = i
                            .checked_sub(2)
                            .map(|r| &self.toks[r])
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone());
                        out.push(Call {
                            name: tok.text.clone(),
                            qual: None,
                            receiver,
                            kind: CallKind::Method,
                            line: tok.line,
                            args_range,
                        });
                    } else if prev == "::" {
                        let qual = i
                            .checked_sub(2)
                            .map(|q| &self.toks[q])
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone());
                        out.push(Call {
                            name: tok.text.clone(),
                            qual,
                            receiver: None,
                            kind: CallKind::Path,
                            line: tok.line,
                            args_range,
                        });
                    } else {
                        out.push(Call {
                            name: tok.text.clone(),
                            qual: None,
                            receiver: None,
                            kind: CallKind::Free,
                            line: tok.line,
                            args_range,
                        });
                    }
                }
            }
            i += 1;
        }
    }

    /// Collects closure expressions in a body token range. Nested `fn`
    /// item bodies are excluded (mirroring [`Self::collect_calls`]);
    /// closures nested *inside* another closure's body are each
    /// recorded on their own, since the scan keeps walking through
    /// recorded bodies.
    ///
    /// Detection is heuristic (no types): a `|` or `||` punct starts a
    /// closure when the previous token is one that can precede an
    /// expression — `(`, `,`, `=`, `=>`, `{`, `;`, `&&`, `||`,
    /// `return`, `else`, or `move`. Match-arm pattern alternation and
    /// bitwise-or follow an identifier, literal, or closing delimiter,
    /// so they never match.
    fn collect_closures(&self, start: usize, end: usize, out: &mut Vec<ClosureInfo>) {
        let mut i = start;
        while i < end {
            // Exclude nested fn items (same walk as collect_calls).
            if self.is_ident(i, "fn")
                && self
                    .toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident)
            {
                let mut j = i;
                while j < end && self.text(j) != "{" && self.text(j) != ";" {
                    j += 1;
                }
                i = if self.text(j) == "{" {
                    self.skip_delim(j, end, "{", "}")
                } else {
                    j + 1
                };
                continue;
            }
            let t = self.text(i);
            let is_vert = self.toks[i].kind == TokKind::Punct && (t == "|" || t == "||");
            if !is_vert || !self.closure_prev_ok(i, start) {
                i += 1;
                continue;
            }
            let line = self.toks[i].line;
            let mut params = Vec::new();
            // Position after the closing `|` of the parameter list.
            let after_params = if t == "||" {
                i + 1
            } else {
                let Some(close) = self.closure_params(i + 1, end, &mut params) else {
                    i += 1;
                    continue;
                };
                close + 1
            };
            // Optional `-> Type` before a (then mandatory) block body.
            let mut k = after_params;
            if self.text(k) == "->" {
                while k < end && self.text(k) != "{" && self.text(k) != ";" {
                    k += 1;
                }
            }
            let body = if self.text(k) == "{" {
                let close_after = self.skip_delim(k, end, "{", "}");
                (k + 1, close_after.saturating_sub(1))
            } else {
                (k, self.closure_expr_end(k, end))
            };
            out.push(ClosureInfo { line, params, body });
            // Keep scanning *inside* the body so nested closures are
            // found too.
            i += 1;
        }
    }

    /// Whether the token before `i` can precede a closure expression.
    fn closure_prev_ok(&self, i: usize, start: usize) -> bool {
        if i == start {
            return true;
        }
        let prev = &self.toks[i - 1];
        matches!(
            prev.text.as_str(),
            "(" | "," | "=" | "=>" | "{" | ";" | "&&" | "||" | "return" | "else" | "move"
        ) && (prev.kind == TokKind::Punct || prev.kind == TokKind::Ident)
    }

    /// Parses a closure parameter list from the token after the opening
    /// `|`; returns the index of the closing `|`, or `None` when no
    /// plausible closing `|` exists (then the vert was not a closure).
    fn closure_params(&self, start: usize, end: usize, params: &mut Vec<String>) -> Option<usize> {
        let mut j = start;
        let mut seen_colon = false;
        let mut depth = 0isize;
        while j < end {
            let t = self.text(j);
            match t {
                "|" if depth == 0 => return Some(j),
                // A statement boundary before the closing `|` means
                // this was never a closure parameter list.
                ";" | "{" | "}" => return None,
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => seen_colon = false,
                ":" if depth == 0 => seen_colon = true,
                _ => {
                    if !seen_colon
                        && self.toks[j].kind == TokKind::Ident
                        && !matches!(t, "mut" | "ref")
                    {
                        params.push(t.to_owned());
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// End (exclusive) of an expression-form closure body starting at
    /// `k`: the `,` or `;` at depth 0, or the closing delimiter of the
    /// enclosing group, whichever comes first.
    fn closure_expr_end(&self, k: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = k;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                "," | ";" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Scans the contiguous doc/attribute block above `fn_line` for
    /// `# Errors` and `# Panics` sections. (`// HOT-PATH:` attachment is
    /// handled window-based by [`attach_hot_markers`].)
    fn doc_facts(&self, fn_line: usize) -> (bool, bool) {
        let mut has_errors = false;
        let mut has_panics = false;
        // 0-based index of the line above the `fn` line.
        let mut idx = fn_line.saturating_sub(1);
        while idx > 0 {
            idx -= 1;
            let line = self.lines.get(idx).map_or("", |l| l.trim_start());
            let is_block_line = line.starts_with("///")
                || line.starts_with("//")
                || line.starts_with("#[")
                || line.starts_with("#!")
                // Continuation lines of a multi-line attribute.
                || line.starts_with(')');
            if !is_block_line {
                break;
            }
            if line.starts_with("///") {
                let doc = line.trim_start_matches('/').trim();
                if doc.starts_with("# Errors") {
                    has_errors = true;
                }
                if doc.starts_with("# Panics") {
                    has_panics = true;
                }
            }
        }
        (has_errors, has_panics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAnalysis {
        parse_file("test.rs", src, &lex(src))
    }

    #[test]
    fn free_fn_and_method_are_recovered() {
        let a = parse(
            "pub fn alpha(x: f64) -> Result<f64, E> { beta(x) }\n\
             fn beta(y: f64) -> f64 { y }\n\
             impl Gamma { pub fn delta(&self, v: &mut Vec<u8>) { v.push(1); } }",
        );
        assert_eq!(a.fns.len(), 3);
        let alpha = &a.fns[0];
        assert!(alpha.is_pub && alpha.returns_result && !alpha.has_self);
        assert_eq!(alpha.calls.len(), 1);
        assert_eq!(alpha.calls[0].name, "beta");
        assert_eq!(alpha.calls[0].kind, CallKind::Free);
        let delta = &a.fns[2];
        assert_eq!(delta.qual.as_deref(), Some("Gamma"));
        assert!(delta.has_self);
        assert_eq!(delta.params.len(), 1);
        assert!(delta.params[0].by_mut_ref);
        assert_eq!(delta.params[0].name, "v");
        let push = &delta.calls[0];
        assert_eq!(push.kind, CallKind::Method);
        assert_eq!(push.receiver.as_deref(), Some("v"));
    }

    #[test]
    fn trait_impl_uses_self_type_not_trait_name() {
        let a = parse("impl<const D: usize> Evaluator<D> for Mc { fn go(&mut self) {} }");
        assert_eq!(a.fns[0].qual.as_deref(), Some("Mc"));
    }

    #[test]
    fn path_calls_and_turbofish() {
        let a = parse(
            "fn f() { let v = Vec::new(); let w: Vec<u8> = x.iter().collect::<Vec<_>>(); \
             crate::theta_region::r_theta_exact::<D>(0.1); }",
        );
        let calls = &a.fns[0].calls;
        let vec_new = calls.iter().find(|c| c.name == "new").unwrap();
        assert_eq!(vec_new.qual.as_deref(), Some("Vec"));
        assert_eq!(vec_new.kind, CallKind::Path);
        let collect = calls.iter().find(|c| c.name == "collect").unwrap();
        assert_eq!(collect.kind, CallKind::Method);
        let rte = calls.iter().find(|c| c.name == "r_theta_exact").unwrap();
        assert_eq!(rte.qual.as_deref(), Some("theta_region"));
    }

    #[test]
    fn macros_are_calls_but_neq_is_not() {
        let a = parse("fn f() { vec![1]; format!(\"x\"); if a != b {} }");
        let names: Vec<&str> = a.fns[0]
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Macro)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["vec", "format"]);
    }

    #[test]
    fn test_fns_are_marked() {
        let a =
            parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib(); }\n}");
        assert!(!a.fns[0].in_test);
        let t = a.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
    }

    #[test]
    fn doc_sections_and_hot_markers() {
        let a = parse(
            "/// Does things.\n///\n/// # Errors\n///\n/// Fails when unlucky.\n\
             pub fn fallible() -> Result<(), E> { Ok(()) }\n\
             /// # Panics\npub fn angry() { }\n\
             // HOT-PATH: per-candidate predicate\nfn hot(p: f64) -> bool { p > 0.0 }\n\
             // HOT-PATH: dangling marker\nstruct NotAFn;",
        );
        let fallible = a.fns.iter().find(|f| f.name == "fallible").unwrap();
        assert!(fallible.doc_has_errors && !fallible.doc_has_panics);
        let angry = a.fns.iter().find(|f| f.name == "angry").unwrap();
        assert!(angry.doc_has_panics);
        let hot = a.fns.iter().find(|f| f.name == "hot").unwrap();
        assert_eq!(hot.hot_marker.as_deref(), Some("per-candidate predicate"));
        assert_eq!(a.hot_markers.len(), 2);
        assert_eq!(a.hot_markers[0].attached_fn.as_deref(), Some("hot"));
        assert_eq!(a.hot_markers[1].attached_fn, None, "marker on a struct");
    }

    #[test]
    fn enums_with_payloads() {
        let a = parse("pub enum PrqError { InvalidTheta(f64), NoPrimaryStrategy, Bad { x: u8 }, }");
        assert_eq!(a.enums.len(), 1);
        let names: Vec<&str> = a.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["InvalidTheta", "NoPrimaryStrategy", "Bad"]);
    }

    #[test]
    fn nested_fn_calls_stay_with_the_nested_item() {
        let a = parse("fn outer() { fn inner() { helper(); } inner(); }");
        let outer = a.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = a.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "inner");
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].name, "helper");
    }

    #[test]
    fn const_fn_and_where_clauses() {
        let a = parse(
            "pub const fn square(x: f64) -> f64 { x * x }\n\
             fn generic<T>(t: T) -> Result<T, E> where T: Clone { Ok(t) }",
        );
        assert_eq!(a.fns.len(), 2);
        assert!(a.fns[0].is_pub);
        assert!(a.fns[1].returns_result);
    }

    #[test]
    fn degenerate_input_is_silent() {
        let a = parse("fn (((( ]] impl enum {{{");
        // Must not panic; item recovery may be empty.
        assert!(a.enums.len() <= 1);
    }

    #[test]
    fn unsafe_is_a_modifier_on_fns_not_a_bare_keyword() {
        let a = parse(
            "pub unsafe fn raw() {}\n\
             unsafe extern \"C\" fn callback(x: u64) -> u64 { x }\n\
             fn safe_one() {}",
        );
        let raw = a.fns.iter().find(|f| f.name == "raw").unwrap();
        assert!(raw.is_unsafe && raw.is_pub);
        let cb = a.fns.iter().find(|f| f.name == "callback").unwrap();
        assert!(cb.is_unsafe);
        let safe_one = a.fns.iter().find(|f| f.name == "safe_one").unwrap();
        assert!(!safe_one.is_unsafe);
        // The inventory sees both unsafe fns and nothing else.
        let kinds: Vec<UnsafeKind> = a.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![UnsafeKind::Fn, UnsafeKind::Fn]);
    }

    #[test]
    fn nested_unsafe_blocks_each_produce_a_site() {
        let a = parse(
            "fn outer() {\n    unsafe {\n        unsafe {\n            work();\n        }\n    }\n}",
        );
        // The enclosing fn is NOT unsafe — the blocks are.
        let outer = a.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(!outer.is_unsafe);
        assert_eq!(a.unsafe_sites.len(), 2, "nested blocks: one site each");
        assert!(a.unsafe_sites.iter().all(|s| s.kind == UnsafeKind::Block));
        assert_eq!(a.unsafe_sites[0].line, 2);
        assert_eq!(a.unsafe_sites[1].line, 3);
    }

    #[test]
    fn unsafe_impl_records_trait_and_self_type() {
        let a = parse(
            "struct Cell;\n\
             unsafe impl Send for Cell {}\n\
             unsafe impl<T> Sync for Holder<T> {}\n\
             impl Cell { fn plain(&self) {} }",
        );
        assert_eq!(a.impls.len(), 3);
        let send = &a.impls[0];
        assert!(send.is_unsafe);
        assert_eq!(send.trait_name.as_deref(), Some("Send"));
        assert_eq!(send.self_ty.as_deref(), Some("Cell"));
        let sync = &a.impls[1];
        assert!(sync.is_unsafe);
        assert_eq!(sync.trait_name.as_deref(), Some("Sync"));
        assert_eq!(sync.self_ty.as_deref(), Some("Holder"));
        let inherent = &a.impls[2];
        assert!(!inherent.is_unsafe);
        assert_eq!(inherent.trait_name, None);
        assert_eq!(inherent.self_ty.as_deref(), Some("Cell"));
        // Inventory: the two unsafe impls only.
        assert_eq!(
            a.unsafe_sites
                .iter()
                .filter(|s| s.kind == UnsafeKind::Impl)
                .count(),
            2
        );
    }

    #[test]
    fn unsafe_in_strings_and_test_regions_is_classified() {
        let a = parse(
            "fn doc() -> &'static str { \"unsafe { not real }\" }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { unsafe { probe(); } }\n}",
        );
        assert_eq!(a.unsafe_sites.len(), 1, "string literal must not count");
        assert!(a.unsafe_sites[0].in_test, "site inside #[cfg(test)]");
    }

    #[test]
    fn call_args_ranges_cover_the_argument_lists() {
        let a = parse("fn f() { g(1, h(2)); v.push(3); }");
        let f = &a.fns[0];
        let g = f.calls.iter().find(|c| c.name == "g").unwrap();
        let (lo, hi) = g.args_range.unwrap();
        // The range is inclusive of the parens and covers the nested call.
        let h = f.calls.iter().find(|c| c.name == "h").unwrap();
        let (hlo, hhi) = h.args_range.unwrap();
        assert!(lo < hlo && hhi < hi, "nested call inside outer args");
        let push = f.calls.iter().find(|c| c.name == "push").unwrap();
        assert!(push.args_range.is_some());
    }

    #[test]
    fn closures_are_collected_with_params_and_bodies() {
        let a = parse(
            "fn f(v: &[u64]) -> u64 {\n\
             let s: u64 = v.iter().map(|x| x + 1).sum();\n\
             let g = move || { s + 2 };\n\
             let h = |acc: u64, x: &u64| acc + x;\n\
             s\n}",
        );
        let f = &a.fns[0];
        assert_eq!(f.closures.len(), 3);
        assert_eq!(f.closures[0].params, vec!["x"]);
        assert!(f.closures[1].params.is_empty());
        assert_eq!(f.closures[2].params, vec!["acc", "x"]);
        // Pattern alternation and bitwise-or are not closures.
        let b = parse("fn g(n: u64) -> u64 { match n { 0 | 1 => n | 2, _ => n } }");
        assert!(b.fns[0].closures.is_empty());
    }

    #[test]
    fn retry_safe_marker_attaches_within_the_window() {
        let a = parse(
            "// RETRY-SAFE: pure snapshot\nfn pure_one() {}\n\
             fn unmarked() {}",
        );
        assert!(
            a.fns
                .iter()
                .find(|f| f.name == "pure_one")
                .unwrap()
                .retry_safe
        );
        assert!(
            !a.fns
                .iter()
                .find(|f| f.name == "unmarked")
                .unwrap()
                .retry_safe
        );
    }

    #[test]
    fn trait_impls_without_for_keep_inherent_shape() {
        let a = parse("impl<const D: usize> Evaluator<D> for Mc { fn go(&mut self) {} }");
        assert_eq!(a.impls.len(), 1);
        assert_eq!(a.impls[0].trait_name.as_deref(), Some("Evaluator"));
        assert_eq!(a.impls[0].self_ty.as_deref(), Some("Mc"));
        assert!(!a.impls[0].is_unsafe);
    }
}
