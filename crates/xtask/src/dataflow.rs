//! Forward dataflow on the per-function CFG: the
//! `olc-use-before-validate` rule.
//!
//! The OLC seqlock protocol (`crates/rtree/src/olc.rs`) demands that
//! any value derived from the payload read under a
//! [`VersionCell::optimistic_read`] guard is *validated* before it
//! escapes the function: between the derivation and every escape site
//! (return, store, call outside a small sink allowlist) there must be a
//! `guard.validate()` check on **every** path. This module implements
//! that domination argument:
//!
//! 1. find guard definitions (statements calling `optimistic_read` and
//!    binding the result),
//! 2. taint values derived while a guard is outstanding — a `let`
//!    whose initializer mentions a tainted variable or the guard, or
//!    performs any opaque read (call / field access / index) while an
//!    unvalidated guard's definition reaches the statement,
//! 3. flag every escape `E` of a tainted value defined at `D` under
//!    guard `g` unless some `g.validate()` statement `V` satisfies
//!    `dom(D, V) ∧ dom(V, E)`.
//!
//! Deliberate conservatism, documented in DESIGN.md §13: taint step 2
//! treats *any* call under an outstanding guard as payload-derived
//! (token-level analysis cannot see what a callee reads), and the
//! domination check is polarity-blind — `if !guard.validate()` counts
//! as a validation point just like `if guard.validate()`. Both err on
//! different sides; the former produces false positives that an
//! `audit-allowlist.txt` entry must justify, the latter accepts a
//! pathological inverted check (a shape the fixtures pin as out of
//! scope).
//!
//! [`VersionCell::optimistic_read`]: ../gprq_rtree/olc/struct.VersionCell.html

use crate::cfg::{self, Cfg, StmtKind};
use crate::lexer::{Tok, TokKind};
use crate::parser::FileAnalysis;
use crate::rules::{snippet, Severity, Violation};
use std::collections::BTreeMap;

/// Calls whose arguments a tainted value may flow into without counting
/// as an escape: constructors of the value being returned (checked at
/// the return itself), the guard's own methods, and side-effect-free
/// shaping helpers.
const ALLOWED_SINKS: [&str; 18] = [
    "Some",
    "Ok",
    "Err",
    "validate",
    "version",
    "clone",
    "drop",
    "min",
    "max",
    "len",
    "is_empty",
    "from",
    "into",
    "black_box",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "saturating_sub",
];

/// Identifiers that appear in `let` patterns without being bindings.
const PATTERN_NOISE: [&str; 6] = ["Some", "Ok", "Err", "None", "mut", "ref"];

/// Per-function analysis caps: beyond these the function is skipped
/// (no summary, no findings) — far above anything in the workspace.
const MAX_GUARDS: usize = 32;
const MAX_BLOCKS: usize = 1024;

/// Summary of one function the dataflow pass analyzed — snapshotted
/// into `audit-markers.txt` (`CFG` lines) and the schema-v4 report.
#[derive(Debug, Clone)]
pub struct CfgFnSummary {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Qualified function name.
    pub fn_name: String,
    /// CFG block count (including entry and the synthetic exit).
    pub blocks: usize,
    /// Optimistic-read guard definitions found.
    pub guards: usize,
}

/// One guard definition inside a function.
struct GuardDef {
    /// Binding name (`guard` in `let Some(guard) = ...`).
    name: String,
    /// Defining statement index.
    def: usize,
    /// Statement indices containing `name.validate()`.
    validates: Vec<usize>,
}

/// Taint record for one derived variable.
#[derive(Clone)]
struct Taint {
    /// Statement that (first) derived the value.
    def: usize,
    /// Guard indices the value depends on.
    guards: Vec<usize>,
}

/// Runs `olc-use-before-validate` over every non-test function in the
/// file that mentions `optimistic_read`, appending violations and one
/// [`CfgFnSummary`] per analyzed function.
pub fn check_olc_use_before_validate(
    path: &str,
    source: &str,
    toks: &[Tok],
    analysis: &FileAnalysis,
    violations: &mut Vec<Violation>,
    summaries: &mut Vec<CfgFnSummary>,
) {
    for f in &analysis.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let mentions = (body.0..body.1.min(toks.len()))
            .any(|i| toks[i].kind == TokKind::Ident && toks[i].text == "optimistic_read");
        if !mentions {
            continue;
        }
        let cfg = cfg::build(toks, body);
        if cfg.blocks.len() > MAX_BLOCKS {
            continue;
        }
        let guards = find_guards(toks, &cfg);
        summaries.push(CfgFnSummary {
            path: path.to_owned(),
            line: f.line,
            fn_name: f.qual_name(),
            blocks: cfg.blocks.len(),
            guards: guards.len(),
        });
        if guards.is_empty() || guards.len() > MAX_GUARDS {
            continue;
        }
        check_fn(path, source, toks, &cfg, &guards, violations);
    }
}

/// Finds guard definitions and their validate statements.
fn find_guards(toks: &[Tok], cfg: &Cfg) -> Vec<GuardDef> {
    let mut out = Vec::new();
    for (s, stmt) in cfg.stmts.iter().enumerate() {
        let has_read = (stmt.lo..stmt.hi)
            .any(|i| toks[i].kind == TokKind::Ident && toks[i].text == "optimistic_read");
        if !has_read {
            continue;
        }
        // Binding: the last non-noise identifier of the `let` pattern
        // (covers `let g = ...`, `let Some(g) = ...`, `if let Some(g)`).
        let Some(name) = let_bindings(toks, stmt.lo, stmt.hi).pop() else {
            continue;
        };
        out.push(GuardDef {
            name,
            def: s,
            validates: Vec::new(),
        });
    }
    for g in &mut out {
        for (s, stmt) in cfg.stmts.iter().enumerate() {
            for i in stmt.lo..stmt.hi.saturating_sub(2) {
                if toks[i].kind == TokKind::Ident
                    && toks[i].text == g.name
                    && toks[i + 1].text == "."
                    && toks[i + 2].text == "validate"
                {
                    g.validates.push(s);
                    break;
                }
            }
        }
    }
    out
}

/// Identifiers bound by a `let` pattern within `[lo, hi)`: the idents
/// between the `let` keyword and the first `=`, minus pattern noise.
/// Empty when the range has no `let`.
fn let_bindings(toks: &[Tok], lo: usize, hi: usize) -> Vec<String> {
    let Some(let_at) = (lo..hi).find(|&i| toks[i].kind == TokKind::Ident && toks[i].text == "let")
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for tok in toks.iter().take(hi).skip(let_at + 1) {
        if tok.kind == TokKind::Punct && tok.text == "=" {
            break;
        }
        if tok.kind == TokKind::Ident && !PATTERN_NOISE.contains(&tok.text.as_str()) {
            out.push(tok.text.clone());
        }
    }
    out
}

/// Whether statement `d`'s definition can reach statement `s` (may
/// analysis: same block and earlier, or `s`'s block reachable from
/// `d`'s block).
fn stmt_reaches(cfg: &Cfg, reach: &[bool], d: usize, s: usize) -> bool {
    if cfg.block_of(d) == cfg.block_of(s) {
        let blk = cfg.block_of(d);
        let stmts = &cfg.blocks[blk].stmts;
        let pd = stmts.iter().position(|&x| x == d);
        let ps = stmts.iter().position(|&x| x == s);
        pd < ps
    } else {
        reach[cfg.block_of(s)]
    }
}

/// The dataflow core for one function.
fn check_fn(
    path: &str,
    source: &str,
    toks: &[Tok],
    cfg: &Cfg,
    guards: &[GuardDef],
    violations: &mut Vec<Violation>,
) {
    let doms = cfg.dominators();
    let reach: Vec<Vec<bool>> = guards.iter().map(|g| cfg.reaches_from(g.def)).collect();
    let guard_stmts: Vec<usize> = guards.iter().map(|g| g.def).collect();

    // Taint to fixpoint (loops can carry taint backwards in statement
    // index order, so iterate until stable, with a small cap).
    let mut taint: BTreeMap<String, Taint> = BTreeMap::new();
    for _ in 0..8 {
        let mut changed = false;
        for (s, stmt) in cfg.stmts.iter().enumerate() {
            if guard_stmts.contains(&s) {
                continue; // the guard binding itself is not payload
            }
            let bindings = stmt_bindings(toks, stmt);
            if bindings.is_empty() {
                continue;
            }
            let rhs = rhs_range(toks, stmt);
            let mut new_guards: Vec<usize> = Vec::new();
            let mut opaque = false;
            for tok in toks.iter().take(rhs.1).skip(rhs.0) {
                match tok.kind {
                    TokKind::Ident => {
                        if let Some(t) = taint.get(&tok.text) {
                            merge(&mut new_guards, &t.guards);
                        }
                        if let Some(gi) = guards.iter().position(|g| g.name == tok.text) {
                            merge(&mut new_guards, &[gi]);
                        }
                    }
                    TokKind::Punct if matches!(tok.text.as_str(), "(" | "[" | ".") => {
                        opaque = true;
                    }
                    _ => {}
                }
            }
            if opaque {
                let live: Vec<usize> = guards
                    .iter()
                    .enumerate()
                    .filter(|(gi, g)| g.def != s && stmt_reaches(cfg, &reach[*gi], g.def, s))
                    .map(|(gi, _)| gi)
                    .collect();
                merge(&mut new_guards, &live);
            }
            if new_guards.is_empty() {
                continue;
            }
            for b in &bindings {
                let entry = taint.entry(b.clone()).or_insert_with(|| {
                    changed = true;
                    Taint {
                        def: s,
                        guards: Vec::new(),
                    }
                });
                let before = entry.guards.len();
                merge(&mut entry.guards, &new_guards);
                changed |= entry.guards.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Escapes.
    let mut reported: Vec<(String, usize)> = Vec::new();
    for (s, stmt) in cfg.stmts.iter().enumerate() {
        for (var, t) in &taint {
            if s == t.def || !stmt_reaches(cfg, &cfg.reaches_from(t.def), t.def, s) {
                continue;
            }
            let mentioned =
                (stmt.lo..stmt.hi).any(|i| toks[i].kind == TokKind::Ident && toks[i].text == *var);
            if !mentioned {
                continue;
            }
            let escape: Option<String> = if matches!(stmt.kind, StmtKind::Return | StmtKind::Tail) {
                Some("returned".to_owned())
            } else {
                escape_kind(toks, stmt, var)
            };
            let Some(desc) = escape else { continue };
            // Every guard the value depends on must have a validate
            // dominated by the derivation and dominating the escape.
            let unvalidated: Vec<&GuardDef> = t
                .guards
                .iter()
                .map(|&gi| &guards[gi])
                .filter(|g| {
                    !g.validates.iter().any(|&v| {
                        cfg.stmt_dominates(&doms, t.def, v) && cfg.stmt_dominates(&doms, v, s)
                    })
                })
                .collect();
            if unvalidated.is_empty() || reported.contains(&(var.clone(), s)) {
                continue;
            }
            reported.push((var.clone(), s));
            let g = unvalidated[0];
            let def_line = cfg.stmts[t.def].line;
            let guard_line = cfg.stmts[g.def].line;
            violations.push(Violation {
                rule: "olc-use-before-validate",
                path: path.to_owned(),
                line: stmt.line,
                snippet: snippet(source, stmt.line),
                message: format!(
                    "`{var}` is derived under optimistic guard `{}` and {desc} at line {} \
                     without a dominating `{}.validate()` check",
                    g.name, stmt.line, g.name
                ),
                severity: Severity::Error,
                chain: vec![
                    format!("guard `{}` snapshot at {path}:{guard_line}", g.name),
                    format!("payload `{var}` derived at {path}:{def_line}"),
                    format!("escapes ({desc}) at {path}:{}", stmt.line),
                ],
            });
        }
    }
}

/// Variables bound by statement `s`: `let` bindings, or the target of a
/// simple (re)assignment `x = ...` / `x += ...`.
fn stmt_bindings(toks: &[Tok], stmt: &cfg::Stmt) -> Vec<String> {
    let lets = let_bindings(toks, stmt.lo, stmt.hi);
    if !lets.is_empty() {
        return lets;
    }
    if toks[stmt.lo].kind == TokKind::Ident {
        let next = toks.get(stmt.lo + 1).map_or("", |t| t.text.as_str());
        let after = toks.get(stmt.lo + 2).map_or("", |t| t.text.as_str());
        if next == "=" || (matches!(next, "+" | "-" | "*" | "/" | "%" | "&" | "^") && after == "=")
        {
            return vec![toks[stmt.lo].text.clone()];
        }
    }
    Vec::new()
}

/// Token range of a statement's initializer / right-hand side: after
/// the first top-level `=`, or the whole statement when there is none
/// (branch heads, expression statements).
fn rhs_range(toks: &[Tok], stmt: &cfg::Stmt) -> (usize, usize) {
    for (i, tok) in toks.iter().enumerate().take(stmt.hi).skip(stmt.lo) {
        if tok.kind == TokKind::Punct && tok.text == "=" {
            return (i + 1, stmt.hi);
        }
    }
    (stmt.lo, stmt.hi)
}

/// Non-return escape shapes for `var` within a statement: stored
/// through a place expression, or passed to a call outside
/// [`ALLOWED_SINKS`].
fn escape_kind(toks: &[Tok], stmt: &cfg::Stmt, var: &str) -> Option<String> {
    // Store: `place = ... var ...;` where the place is compound
    // (contains `.` / `[` / `*` before the `=`).
    for i in stmt.lo..stmt.hi {
        if toks[i].kind == TokKind::Punct && toks[i].text == "=" {
            let lhs_compound =
                (stmt.lo..i).any(|k| matches!(toks[k].text.as_str(), "." | "[" | "*"));
            let is_let = (stmt.lo..i).any(|k| toks[k].text == "let");
            let rhs_mentions =
                (i + 1..stmt.hi).any(|k| toks[k].kind == TokKind::Ident && toks[k].text == var);
            if lhs_compound && !is_let && rhs_mentions {
                return Some("stored".to_owned());
            }
            break;
        }
    }
    // Call argument: `name( ... var ... )` with `name` not allowlisted.
    for i in stmt.lo..stmt.hi {
        if toks[i].kind != TokKind::Ident
            || ALLOWED_SINKS.contains(&toks[i].text.as_str())
            || toks[i].text == var
        {
            continue;
        }
        if toks.get(i + 1).map_or("", |t| t.text.as_str()) != "(" {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < stmt.hi {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if depth > 0 && toks[j].kind == TokKind::Ident && toks[j].text == var {
                        return Some(format!("passed to `{}`", toks[i].text));
                    }
                }
            }
            j += 1;
        }
    }
    None
}

/// Sorted-merge of guard index sets.
fn merge(into: &mut Vec<usize>, add: &[usize]) {
    for &a in add {
        if !into.contains(&a) {
            into.push(a);
        }
    }
    into.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        let toks = lex(src);
        let analysis = crate::parser::parse_file("t.rs", src, &toks);
        let mut v = Vec::new();
        let mut s = Vec::new();
        check_olc_use_before_validate("t.rs", src, &toks, &analysis, &mut v, &mut s);
        v
    }

    const BAD: &str = "fn torn(cell: &VersionCell, p: &AtomicU64) -> Option<u64> {\n\
        let Some(guard) = cell.optimistic_read() else {\n\
            return None;\n\
        };\n\
        let value = p.load(Ordering::Acquire);\n\
        Some(value)\n}";

    const GOOD: &str = "fn ok(cell: &VersionCell, p: &AtomicU64) -> Option<u64> {\n\
        let Some(guard) = cell.optimistic_read() else {\n\
            return None;\n\
        };\n\
        let value = p.load(Ordering::Acquire);\n\
        if guard.validate() {\n\
            return Some(value);\n\
        }\n\
        None\n}";

    #[test]
    fn unvalidated_escape_is_flagged_with_witness() {
        let v = run(BAD);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "olc-use-before-validate");
        assert_eq!(v[0].line, 6, "the escape site, not the derivation");
        assert!(v[0].message.contains("`value`"));
        assert!(v[0].chain.iter().any(|c| c.contains("escapes")));
    }

    #[test]
    fn validate_dominated_escape_is_clean() {
        assert!(run(GOOD).is_empty());
    }

    #[test]
    fn read_consistent_loop_shape_is_clean() {
        let src = "fn rc(cell: &VersionCell, n: usize) -> Option<u64> {\n\
            for _ in 0..=n {\n\
                let Some(guard) = cell.optimistic_read() else {\n\
                    continue;\n\
                };\n\
                let value = read();\n\
                if guard.validate() {\n\
                    return Some(value);\n\
                }\n\
            }\n\
            None\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn validate_on_only_one_path_is_flagged() {
        let src = "fn half(cell: &VersionCell, p: &AtomicU64, flip: bool) -> u64 {\n\
            let Some(guard) = cell.optimistic_read() else { return 0; };\n\
            let value = p.load(Ordering::Acquire);\n\
            if flip {\n\
                let _ok = guard.validate();\n\
            }\n\
            sink(value)\n}";
        let v = run(src);
        assert_eq!(v.len(), 1, "validate in one branch does not dominate");
    }

    #[test]
    fn functions_without_optimistic_read_are_skipped() {
        assert!(run("fn plain(x: u64) -> u64 { helper(x) }").is_empty());
    }
}
