//! The triaged-exception allowlist.
//!
//! Format (one entry per line, `|`-separated, `#` starts a comment):
//!
//! ```text
//! rule-id | path suffix | line fragment | reason
//! ```
//!
//! An entry suppresses a violation when all three match:
//! * `rule-id` equals the violation's rule,
//! * the violation's workspace-relative path ends with `path suffix`,
//! * the violation's source line contains `line fragment`.
//!
//! Matching on a code fragment instead of a line number keeps entries
//! stable across unrelated edits. Every entry must carry a non-empty
//! reason — the audit rejects reasonless entries. Unused entries are
//! reported so the list cannot rot.

use crate::rules::Violation;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the exception applies to.
    pub rule: String,
    /// Path suffix the exception applies to.
    pub path_suffix: String,
    /// Required substring of the violating source line.
    pub fragment: String,
    /// Why the exception is sound.
    pub reason: String,
    /// Line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// Parses the allowlist; returns entries or a list of format errors.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() != 4 {
            errors.push(format!(
                "allowlist line {}: expected `rule | path | fragment | reason`, got `{raw}`",
                idx + 1
            ));
            continue;
        }
        if parts.iter().any(|p| p.is_empty()) {
            errors.push(format!(
                "allowlist line {}: all four fields (incl. the reason) must be non-empty",
                idx + 1
            ));
            continue;
        }
        entries.push(AllowEntry {
            rule: parts[0].to_owned(),
            path_suffix: parts[1].to_owned(),
            fragment: parts[2].to_owned(),
            reason: parts[3].to_owned(),
            line: idx + 1,
        });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Splits violations into (active, suppressed) and reports which
/// entries never matched anything.
pub fn apply(
    violations: Vec<Violation>,
    entries: &[AllowEntry],
) -> (Vec<Violation>, Vec<(Violation, usize)>, Vec<usize>) {
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for v in violations {
        let hit = entries.iter().position(|e| {
            e.rule == v.rule && v.path.ends_with(&e.path_suffix) && v.snippet.contains(&e.fragment)
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed.push((v, i));
            }
            None => active.push(v),
        }
    }
    let unused = (0..entries.len()).filter(|&i| !used[i]).collect();
    (active, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn violation(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_owned(),
            line: 1,
            snippet: snippet.to_owned(),
            message: String::new(),
            severity: Severity::Error,
            chain: Vec::new(),
        }
    }

    #[test]
    fn parse_rejects_missing_reason() {
        assert!(parse("float-eq | a.rs | x == 0.0 |").is_err());
        assert!(parse("float-eq | a.rs | x == 0.0").is_err());
        assert!(parse("float-eq | a.rs | x == 0.0 | exact zero guard").is_ok());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let entries = parse("# header\n\nfloat-eq | a.rs | frag | why\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "float-eq");
    }

    #[test]
    fn apply_matches_on_all_three_fields() {
        let entries = parse("float-eq | gaussian/src/chi.rs | r == 0.0 | boundary").unwrap();
        let vs = vec![
            violation("float-eq", "crates/gaussian/src/chi.rs", "if r == 0.0 {"),
            violation("float-eq", "crates/gaussian/src/chi.rs", "if q == 0.0 {"),
            violation("panic-free", "crates/gaussian/src/chi.rs", "if r == 0.0 {"),
        ];
        let (active, suppressed, unused) = apply(vs, &entries);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(active.len(), 2);
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let entries = parse("panic-free | nowhere.rs | frag | stale").unwrap();
        let (_, _, unused) = apply(Vec::new(), &entries);
        assert_eq!(unused, vec![0]);
    }
}
