//! A minimal Rust lexer sufficient for the invariant auditor.
//!
//! The offline build environment has no `syn`/`proc-macro2`, so the
//! auditor tokenizes source itself. The lexer understands everything
//! needed to avoid false positives from non-code text: line and
//! (nested) block comments, string/char/byte literals, raw strings with
//! arbitrary hash fences, lifetimes vs. char literals, and numeric
//! literals with suffixes. It does **not** build a syntax tree — the
//! rules in [`crate::rules`] pattern-match on the token stream.

/// Token kinds the auditor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal with a fractional part, exponent, or float suffix.
    FloatLit,
    /// Any other numeric literal.
    IntLit,
    /// String / char / byte literal (contents discarded).
    StrLit,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Punctuation; multi-character for `==`, `!=`, `..`, `::`, `->`,
    /// `=>`, `..=`, `<=`, `>=`, `&&`, `||`.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text (empty for string literals).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

/// Tokenizes `source`, discarding comments and literal contents.
///
/// The lexer is forgiving: on any construct it does not understand it
/// advances one character, so a pathological file degrades to noise
/// tokens rather than a crash — the auditor must never panic on user
/// source (it is subject to its own rules).
pub fn lex(source: &str) -> Vec<Tok> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_' || b >= 0x80;
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80;

    while i < n {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                // Line comment (incl. doc comments): skip to newline.
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let (next_i, newlines) = skip_raw_string(bytes, i);
                toks.push(Tok {
                    kind: TokKind::StrLit,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = next_i;
            }
            b'"' => {
                let (next_i, newlines) = skip_quoted(bytes, i, b'"');
                toks.push(Tok {
                    kind: TokKind::StrLit,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = next_i;
            }
            b'b' if i + 1 < n && bytes[i + 1] == b'"' => {
                let (next_i, newlines) = skip_quoted(bytes, i + 1, b'"');
                toks.push(Tok {
                    kind: TokKind::StrLit,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = next_i;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // closed by another `'`.
                if i + 1 < n
                    && is_ident_start(bytes[i + 1])
                    && !(i + 2 < n && bytes[i + 2] == b'\'')
                {
                    let start = i + 1;
                    let mut j = start;
                    while j < n && is_ident_cont(bytes[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: source[start..j].to_owned(),
                        line,
                    });
                    i = j;
                } else {
                    let (next_i, newlines) = skip_quoted(bytes, i, b'\'');
                    toks.push(Tok {
                        kind: TokKind::StrLit,
                        text: String::new(),
                        line,
                    });
                    line += newlines;
                    i = next_i;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && i + 1 < n && matches!(bytes[i + 1], b'x' | b'o' | b'b') {
                    // Radix literal: digits + underscores + hex letters.
                    i += 2;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    // Fractional part — but `1..x` is int + range and
                    // `1.method()` is int + field/method access.
                    if i < n && bytes[i] == b'.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                        is_float = true;
                        i += 1;
                        while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    } else if i < n
                        && bytes[i] == b'.'
                        && !(i + 1 < n && (bytes[i + 1] == b'.' || is_ident_start(bytes[i + 1])))
                    {
                        // Trailing-dot float like `1.`
                        is_float = true;
                        i += 1;
                    }
                    // Exponent.
                    if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < n && bytes[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                                i += 1;
                            }
                        }
                    }
                }
                // Type suffix (f64, u32, usize, ...).
                let suffix_start = i;
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                let suffix = &source[suffix_start..i];
                if suffix.starts_with('f') {
                    is_float = true;
                }
                toks.push(Tok {
                    kind: if is_float {
                        TokKind::FloatLit
                    } else {
                        TokKind::IntLit
                    },
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                // Punctuation; join the two/three-character operators the
                // rules care about. Checked slicing: the next character
                // may be multi-byte UTF-8 (math symbols in doc strings),
                // and a mid-character range must read as "no match", not
                // a panic.
                let three: &str = source.get(i..i + 3).unwrap_or("");
                let two: &str = source.get(i..i + 2).unwrap_or("");
                let taken = if three == "..=" {
                    3
                } else if matches!(
                    two,
                    "==" | "!=" | ".." | "::" | "->" | "=>" | "<=" | ">=" | "&&" | "||"
                ) {
                    2
                } else {
                    1
                };
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: source[i..i + taken].to_owned(),
                    line,
                });
                i += taken;
            }
        }
    }
    toks
}

/// Does a raw (byte) string literal start at `i`? (`r"`, `r#`, `br"`, `br#`)
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Skips a raw string starting at `i`; returns (index-after, newline count).
fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

/// Skips a quoted literal with backslash escapes starting at `i` (which
/// must point at the opening quote); returns (index-after, newline count).
fn skip_quoted(bytes: &[u8], i: usize, quote: u8) -> (usize, usize) {
    let mut j = i + 1;
    let mut newlines = 0;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let toks = kinds("// x.unwrap()\n/* panic!() /* nested */ */ let s = \"thread_rng\"; 'c'");
        assert!(toks
            .iter()
            .all(|(_, t)| t != "unwrap" && t != "panic" && t != "thread_rng"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r####"let s = r#"with "quotes" and unwrap()"# ;"####);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("let a = 1.5; let b = 10; for i in 0..9 {} let c = 2e-3; let d = 3f64;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::FloatLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "2e-3", "3f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::IntLit && t == "9"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            3
        );
    }

    #[test]
    fn multi_char_puncts() {
        let toks = kinds("a == b != c .. d ..= e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "..", "..="]);
    }

    #[test]
    fn line_numbers_track_all_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\nlet s = \"x\ny\";\nlet c = 3;";
        let toks = lex(src);
        let find = |txt: &str| toks.iter().find(|t| t.text == txt).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn unwrap_or_is_distinct_from_unwrap() {
        let toks = kinds("x.unwrap_or(0); y.unwrap_or_else(f); z.unwrap();");
        let unwraps = toks.iter().filter(|(_, t)| t == "unwrap").count();
        assert_eq!(unwraps, 1);
    }
}
