//! Intra-procedural control-flow graphs over the lexed token stream.
//!
//! The statement-level rules of PRs 1–6 treat a function body as a flat
//! token window, which cannot express *ordering* facts: "the guard is
//! validated before the payload escapes" is a statement about every
//! path through the body, not about any single window. This module
//! recovers a per-function CFG — basic blocks of token-range
//! statements, with branch/loop/`?`/early-return edges — plus block
//! dominators, so [`crate::dataflow`] can run a forward analysis and a
//! domination argument on top.
//!
//! Like the parser, the builder is hand-rolled (no `syn` offline) and
//! *forgiving*: unrecognized constructs lower as plain statements and a
//! malformed body degrades to a single linear block rather than an
//! error. Two deliberate imprecisions, both documented in DESIGN.md
//! §13:
//!
//! * Blocks are not strictly *basic*: a statement that can transfer
//!   control out mid-block (`let ... else`, `?`) adds an outgoing edge
//!   from its enclosing block but the block keeps accumulating
//!   statements. Dominance stays sound for the validate-before-escape
//!   argument because the analysis only asks whether a *validate*
//!   statement sits between a definition and an escape on every path —
//!   the extra in-block successors only ever *weaken* dominance claims
//!   across blocks, never strengthen them, except for statements lexically
//!   after the branching statement in the same block, which genuinely
//!   do not dominate the branch target (see the dataflow caveats).
//! * Statement-position `match` arms with expression bodies lower those
//!   expressions as tail statements, over-approximating "escape" when
//!   the match result is discarded.

use crate::lexer::{Tok, TokKind};

/// How a statement ends / transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Ordinary statement (ends in `;`).
    Plain,
    /// Trailing expression without `;` — the block's value, which for
    /// the function body (or a match arm) can escape the function.
    Tail,
    /// Branch head: the condition/scrutinee of an `if`/`while`/`for`/
    /// `match`, including any `let` pattern it binds.
    Cond,
    /// `return ...;`
    Return,
    /// `break` / `continue`.
    Jump,
}

/// One statement: a token range within the body.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Token-index range `[lo, hi)`.
    pub lo: usize,
    /// Token-index range `[lo, hi)`.
    pub hi: usize,
    /// 1-based source line of the first token.
    pub line: usize,
    /// Control shape.
    pub kind: StmtKind,
}

/// One CFG block: an ordered run of statements plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Indices into [`Cfg::stmts`], in execution order.
    pub stmts: Vec<usize>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; `blocks[entry]` is the function entry.
    pub blocks: Vec<Block>,
    /// All statements, indexed by the blocks.
    pub stmts: Vec<Stmt>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Synthetic exit block (no statements, no successors).
    pub exit: usize,
    /// `stmt_block[s]` = index of the block containing statement `s`.
    stmt_block: Vec<usize>,
}

/// Builds the CFG for a body whose braces sit at token indices
/// `body.0` (`{`) and `body.1` (`}`), exclusive of both.
pub fn build(toks: &[Tok], body: (usize, usize)) -> Cfg {
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        stmts: Vec::new(),
        stmt_block: Vec::new(),
        exit: 1,
    };
    let start = body.0 + 1;
    let end = body.1.min(toks.len());
    let mut loops = Vec::new();
    let last = b.lower(start, end, 0, &mut loops);
    b.edge(last, b.exit);
    Cfg {
        entry: 0,
        exit: b.exit,
        blocks: b.blocks,
        stmts: b.stmts,
        stmt_block: b.stmt_block,
    }
}

impl Cfg {
    /// The block containing statement `s`.
    #[must_use]
    pub fn block_of(&self, s: usize) -> usize {
        self.stmt_block[s]
    }

    /// Block-level dominator sets: `doms[b]` holds `d` iff every path
    /// from entry to `b` passes through `d`. Computed by the standard
    /// iterative data-flow over predecessor intersections; blocks
    /// unreachable from entry keep the full set (they lie on no path,
    /// so any claim about them is vacuous).
    #[must_use]
    pub fn dominators(&self) -> Vec<Vec<bool>> {
        let n = self.blocks.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        let mut doms: Vec<Vec<bool>> = vec![vec![true; n]; n];
        doms[self.entry] = vec![false; n];
        doms[self.entry][self.entry] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == self.entry || preds[b].is_empty() {
                    continue;
                }
                let mut next = vec![true; n];
                for &p in &preds[b] {
                    for (d, bit) in next.iter_mut().enumerate() {
                        *bit = *bit && doms[p][d];
                    }
                }
                next[b] = true;
                if next != doms[b] {
                    doms[b] = next;
                    changed = true;
                }
            }
        }
        doms
    }

    /// Whether statement `a` dominates statement `b`: every path from
    /// entry to `b` executes `a` first. Same-block statements use their
    /// in-block order; cross-block uses block dominance.
    #[must_use]
    pub fn stmt_dominates(&self, doms: &[Vec<bool>], a: usize, b: usize) -> bool {
        let (ba, bb) = (self.stmt_block[a], self.stmt_block[b]);
        if ba == bb {
            let blk = &self.blocks[ba];
            let pa = blk.stmts.iter().position(|&s| s == a);
            let pb = blk.stmts.iter().position(|&s| s == b);
            pa <= pb
        } else {
            doms[bb][ba]
        }
    }

    /// Whether any statement of block `to` can execute after statement
    /// `s` — i.e. `to` is reachable from `s`'s block (crossing edges),
    /// or is `s`'s own block (in-block statements after `s` are
    /// resolved by the caller via statement positions).
    #[must_use]
    pub fn reaches_from(&self, s: usize) -> Vec<bool> {
        let n = self.blocks.len();
        let mut seen = vec![false; n];
        let start = self.stmt_block[s];
        let mut work = vec![start];
        seen[start] = true;
        while let Some(b) = work.pop() {
            for &t in &self.blocks[b].succs {
                if !seen[t] {
                    seen[t] = true;
                    work.push(t);
                }
            }
        }
        seen
    }
}

/// Loop context for `break`/`continue` lowering.
type LoopCtx = (usize, usize); // (continue target, break target)

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
    stmts: Vec<Stmt>,
    stmt_block: Vec<usize>,
    exit: usize,
}

impl Builder<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Records statement `[lo, hi)` in `block`. A `?` anywhere in the
    /// range adds an early-return edge to the exit block.
    fn push_stmt(&mut self, block: usize, lo: usize, hi: usize, kind: StmtKind) {
        if lo >= hi {
            return;
        }
        let id = self.stmts.len();
        self.stmts.push(Stmt {
            lo,
            hi,
            line: self.toks[lo].line,
            kind,
        });
        self.stmt_block.push(block);
        self.blocks[block].stmts.push(id);
        if (lo..hi).any(|i| self.text(i) == "?") {
            self.edge(block, self.exit);
        }
    }

    /// Index of the matching close for the open delimiter at `i`;
    /// `end` if unbalanced.
    fn matching(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// First `{` from `i` at paren/bracket depth 0 (a branch head's
    /// body opener); `end` if none.
    fn body_open(&self, i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Lowers the statement range `[start, end)` starting in block
    /// `cur`; returns the block where fall-through control ends up.
    fn lower(
        &mut self,
        start: usize,
        end: usize,
        mut cur: usize,
        loops: &mut Vec<LoopCtx>,
    ) -> usize {
        let mut i = start;
        while i < end {
            match self.text(i) {
                ";" => i += 1,
                // `'label:` before a loop.
                _ if self.toks[i].kind == TokKind::Lifetime && self.text(i + 1) == ":" => {
                    i += 2;
                }
                "{" => {
                    // Bare block: lower inline (scoping is irrelevant
                    // to control flow).
                    let close = self.matching(i, end, "{", "}");
                    cur = self.lower(i + 1, close, cur, loops);
                    i = close + 1;
                }
                "unsafe" if self.text(i + 1) == "{" => i += 1,
                "if" => {
                    let (ni, join) = self.lower_if(i, end, cur, loops);
                    cur = join;
                    i = ni;
                }
                "while" => {
                    let open = self.body_open(i, end);
                    let close = self.matching(open, end, "{", "}");
                    let header = self.new_block();
                    self.edge(cur, header);
                    self.push_stmt(header, i, open, StmtKind::Cond);
                    let body_entry = self.new_block();
                    let join = self.new_block();
                    self.edge(header, body_entry);
                    self.edge(header, join);
                    loops.push((header, join));
                    let body_out = self.lower(open + 1, close, body_entry, loops);
                    loops.pop();
                    self.edge(body_out, header);
                    cur = join;
                    i = close + 1;
                }
                "for" => {
                    let open = self.body_open(i, end);
                    let close = self.matching(open, end, "{", "}");
                    let header = self.new_block();
                    self.edge(cur, header);
                    self.push_stmt(header, i, open, StmtKind::Cond);
                    let body_entry = self.new_block();
                    let join = self.new_block();
                    self.edge(header, body_entry);
                    self.edge(header, join);
                    loops.push((header, join));
                    let body_out = self.lower(open + 1, close, body_entry, loops);
                    loops.pop();
                    self.edge(body_out, header);
                    cur = join;
                    i = close + 1;
                }
                "loop" => {
                    let open = self.body_open(i, end);
                    let close = self.matching(open, end, "{", "}");
                    let header = self.new_block();
                    self.edge(cur, header);
                    let join = self.new_block();
                    loops.push((header, join));
                    let body_out = self.lower(open + 1, close, header, loops);
                    loops.pop();
                    self.edge(body_out, header);
                    cur = join;
                    i = close + 1;
                }
                "match" => {
                    let (ni, join) = self.lower_match(i, end, cur, loops);
                    cur = join;
                    i = ni;
                }
                "return" => {
                    let semi = self.stmt_end(i, end);
                    self.push_stmt(cur, i, semi, StmtKind::Return);
                    self.edge(cur, self.exit);
                    cur = self.new_block(); // dead code after return
                    i = semi + 1;
                }
                "break" | "continue" => {
                    let is_break = self.text(i) == "break";
                    let semi = self.stmt_end(i, end);
                    self.push_stmt(cur, i, semi, StmtKind::Jump);
                    let target = match loops.last() {
                        Some(&(cont, brk)) => {
                            if is_break {
                                brk
                            } else {
                                cont
                            }
                        }
                        // `break`/`continue` outside a lowered loop
                        // (e.g. inside a labeled block): treat as exit.
                        None => self.exit,
                    };
                    self.edge(cur, target);
                    cur = self.new_block(); // dead code after the jump
                    i = semi + 1;
                }
                "let" => {
                    i = self.lower_let(i, end, &mut cur, loops);
                }
                _ => {
                    let semi = self.stmt_end(i, end);
                    let kind = if semi >= end && self.text(semi) != ";" {
                        StmtKind::Tail
                    } else {
                        StmtKind::Plain
                    };
                    self.push_stmt(cur, i, semi, kind);
                    i = semi + 1;
                }
            }
        }
        cur
    }

    /// End of a plain statement starting at `i`: the `;` at depth 0, or
    /// `end`.
    fn stmt_end(&self, i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Lowers a `let` statement, including `let ... else { ... }`;
    /// returns the index after the statement. The else-body is lowered
    /// as a diverging branch out of `cur` (its fall-through gets no
    /// successor — the grammar requires it to diverge).
    fn lower_let(
        &mut self,
        i: usize,
        end: usize,
        cur: &mut usize,
        loops: &mut Vec<LoopCtx>,
    ) -> usize {
        let mut depth = 0isize;
        let mut seen_branch_kw = false;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => {
                    self.push_stmt(*cur, i, j, StmtKind::Plain);
                    return j + 1;
                }
                // `if`/`match` at depth 0 in the initializer means a
                // later depth-0 `else` belongs to them, not to
                // `let-else`.
                "if" | "match" if depth == 0 => seen_branch_kw = true,
                "else" if depth == 0 && !seen_branch_kw => {
                    // `let PAT = EXPR else { DIVERGE };`
                    self.push_stmt(*cur, i, j, StmtKind::Plain);
                    let open = self.body_open(j, end);
                    let close = self.matching(open, end, "{", "}");
                    let else_entry = self.new_block();
                    self.edge(*cur, else_entry);
                    // Diverging: return/break/continue inside wire
                    // their own edges; the fall-through block dangles.
                    self.lower(open + 1, close, else_entry, loops);
                    let after = if self.text(close + 1) == ";" {
                        close + 2
                    } else {
                        close + 1
                    };
                    return after;
                }
                _ => {}
            }
            j += 1;
        }
        self.push_stmt(*cur, i, end, StmtKind::Plain);
        end
    }

    /// Lowers `if COND { .. } [else if .. | else { .. }]` starting at
    /// `i`; returns `(index after the construct, join block)`.
    fn lower_if(
        &mut self,
        i: usize,
        end: usize,
        cur: usize,
        loops: &mut Vec<LoopCtx>,
    ) -> (usize, usize) {
        let open = self.body_open(i, end);
        let close = self.matching(open, end, "{", "}");
        self.push_stmt(cur, i, open, StmtKind::Cond);
        let then_entry = self.new_block();
        self.edge(cur, then_entry);
        let then_out = self.lower(open + 1, close, then_entry, loops);
        let join = self.new_block();
        self.edge(then_out, join);
        let mut after = close + 1;
        if self.text(after) == "else" {
            if self.text(after + 1) == "if" {
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                let (ni, inner_join) = self.lower_if(after + 1, end, else_entry, loops);
                self.edge(inner_join, join);
                after = ni;
            } else if self.text(after + 1) == "{" {
                let eclose = self.matching(after + 1, end, "{", "}");
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                let else_out = self.lower(after + 2, eclose, else_entry, loops);
                self.edge(else_out, join);
                after = eclose + 1;
            } else {
                self.edge(cur, join);
            }
        } else {
            self.edge(cur, join);
        }
        (after, join)
    }

    /// Lowers `match SCRUT { PAT => BODY, ... }` starting at `i`;
    /// returns `(index after the construct, join block)`.
    fn lower_match(
        &mut self,
        i: usize,
        end: usize,
        cur: usize,
        loops: &mut Vec<LoopCtx>,
    ) -> (usize, usize) {
        let open = self.body_open(i, end);
        let close = self.matching(open, end, "{", "}");
        self.push_stmt(cur, i, open, StmtKind::Cond);
        let join = self.new_block();
        let mut k = open + 1;
        let mut any_arm = false;
        while k < close {
            // Pattern (and guard) up to `=>` at depth 0.
            let mut depth = 0isize;
            let mut arrow = k;
            while arrow < close {
                match self.text(arrow) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                arrow += 1;
            }
            if arrow >= close {
                break;
            }
            any_arm = true;
            let arm_entry = self.new_block();
            self.edge(cur, arm_entry);
            let body_start = arrow + 1;
            if self.text(body_start) == "{" {
                let bclose = self.matching(body_start, close + 1, "{", "}");
                let arm_out = self.lower(body_start + 1, bclose, arm_entry, loops);
                self.edge(arm_out, join);
                k = bclose + 1;
                if self.text(k) == "," {
                    k += 1;
                }
            } else {
                // Expression arm: to `,` at depth 0 (or the match close).
                let mut depth2 = 0isize;
                let mut e = body_start;
                while e < close {
                    match self.text(e) {
                        "(" | "[" | "{" => depth2 += 1,
                        ")" | "]" | "}" => depth2 -= 1,
                        "," if depth2 == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let arm_out = self.lower(body_start, e, arm_entry, loops);
                self.edge(arm_out, join);
                k = e + 1;
            }
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (close + 1, join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Builds the CFG of the first fn in `src`.
    fn cfg_of(src: &str) -> Cfg {
        let toks = lex(src);
        let a = crate::parser::parse_file("test.rs", src, &toks);
        build(&toks, a.fns[0].body.unwrap())
    }

    fn stmt_containing(cfg: &Cfg, toks: &[Tok], needle: &str) -> usize {
        cfg.stmts
            .iter()
            .position(|s| (s.lo..s.hi).any(|i| toks[i].text == needle))
            .unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("fn f() { let a = 1; let b = a + 1; b }");
        assert_eq!(c.stmts.len(), 3);
        assert_eq!(c.stmts[2].kind, StmtKind::Tail);
        // All three in the entry block.
        assert!(c
            .stmts
            .iter()
            .enumerate()
            .all(|(i, _)| c.block_of(i) == c.entry));
    }

    #[test]
    fn if_else_joins_and_dominates() {
        let src = "fn f(x: u64) -> u64 { let a = seed(); if a > x { left(); } else { right(); } done(a) }";
        let toks = lex(src);
        let c = cfg_of(src);
        let doms = c.dominators();
        let def = stmt_containing(&c, &toks, "seed");
        let l = stmt_containing(&c, &toks, "left");
        let r = stmt_containing(&c, &toks, "right");
        let after = stmt_containing(&c, &toks, "done");
        assert!(c.stmt_dominates(&doms, def, l));
        assert!(c.stmt_dominates(&doms, def, r));
        assert!(c.stmt_dominates(&doms, def, after));
        assert!(
            !c.stmt_dominates(&doms, l, after),
            "one arm never dominates the join"
        );
        assert!(!c.stmt_dominates(&doms, l, r));
    }

    #[test]
    fn read_consistent_shape_validate_dominates_return() {
        // The exact control shape of VersionCell::read_consistent.
        let src = "fn f(n: usize) -> Option<u64> {\n\
            for _ in 0..=n {\n\
                let Some(guard) = self.optimistic_read() else {\n\
                    continue;\n\
                };\n\
                let value = read();\n\
                if guard.validate() {\n\
                    return Some(value);\n\
                }\n\
            }\n\
            None\n}";
        let toks = lex(src);
        let c = cfg_of(src);
        let doms = c.dominators();
        let def = stmt_containing(&c, &toks, "value");
        let val = stmt_containing(&c, &toks, "validate");
        let ret = stmt_containing(&c, &toks, "return");
        assert!(
            c.stmt_dominates(&doms, def, val),
            "derivation before validate"
        );
        assert!(
            c.stmt_dominates(&doms, val, ret),
            "validate dominates the escape"
        );
        // The final `None` tail is NOT dominated by the validate.
        let none_tail = c
            .stmts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.kind == StmtKind::Tail)
            .map(|(i, _)| i)
            .unwrap();
        assert!(!c.stmt_dominates(&doms, val, none_tail));
    }

    #[test]
    fn loop_break_continue_edges() {
        let src = "fn f() { loop { if stop() { break; } step(); } after() }";
        let toks = lex(src);
        let c = cfg_of(src);
        let step = stmt_containing(&c, &toks, "step");
        let after = stmt_containing(&c, &toks, "after");
        let doms = c.dominators();
        // The loop body statement does not dominate the code after the
        // loop (the break path skips it).
        assert!(!c.stmt_dominates(&doms, step, after));
        // But it reaches it.
        assert!(c.reaches_from(step)[c.block_of(after)]);
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let src = "fn f() -> Result<u64, E> { let a = get()?; Ok(a) }";
        let c = cfg_of(src);
        let entry_succs = &c.blocks[c.entry].succs;
        assert!(entry_succs.contains(&c.exit), "`?` wires an early return");
    }

    #[test]
    fn match_arms_branch_and_join() {
        let src = "fn f(x: u64) -> u64 { let s = seed(); match x { 0 => zero(), 1 => { one(); two() } _ => other(), } fin(s) }";
        let toks = lex(src);
        let c = cfg_of(src);
        let doms = c.dominators();
        let seed = stmt_containing(&c, &toks, "seed");
        let zero = stmt_containing(&c, &toks, "zero");
        let two = stmt_containing(&c, &toks, "two");
        let fin = stmt_containing(&c, &toks, "fin");
        assert!(c.stmt_dominates(&doms, seed, zero));
        assert!(c.stmt_dominates(&doms, seed, two));
        assert!(c.stmt_dominates(&doms, seed, fin));
        assert!(!c.stmt_dominates(&doms, zero, fin));
    }

    #[test]
    fn degenerate_bodies_do_not_panic() {
        for src in [
            "fn f() {}",
            "fn f() { ; ; }",
            "fn f() { if x { } }",
            "fn f() { match x { } }",
            "fn f() { 'a: loop { break; } }",
            "fn f() { (((( }",
        ] {
            let c = cfg_of(src);
            let _ = c.dominators();
        }
    }
}
