//! Workspace call graph and the transitive rules built on it.
//!
//! The graph is built from [`crate::parser::FileAnalysis`] of every
//! library file in the four panic-free crates. Call edges are resolved
//! *by name*, conservatively:
//!
//! * method calls (`x.f(...)`) link to **every** workspace method named
//!   `f` (dynamic dispatch over-approximation — a trait call must reach
//!   all impls);
//! * qualified calls (`Q::f(...)`) link to functions declared in an
//!   `impl Q`/`trait Q` scope; an uppercase qualifier with no workspace
//!   match is an external type (`Vec::new`) and produces no edge, while
//!   a lowercase qualifier is a module path and falls back to free-
//!   function resolution;
//! * free calls link to same-file, then same-crate, then any workspace
//!   function of that name.
//!
//! Closures are invisible to the graph (a call through a closure
//! parameter resolves to nothing), but the *bodies* of closures are
//! token ranges of their defining function, so their call sites are
//! attributed to the enclosing function — the common
//! `descend(node, &mut |entry| out.push(entry))` shape keeps the
//! caller's pushes attributed to the caller, where the `&mut`-parameter
//! exemption can judge them. Shims, workloads, and benches sit outside
//! the graph by design: they are the documented trust boundary.

use crate::parser::{Call, CallKind, EnumInfo, FileAnalysis, FnInfo, HotPathMarker, QualRef};
use crate::rules::{Severity, Violation};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates included in the graph (same set as the panic-free rule).
pub const GRAPH_CRATES: [&str; 4] = [
    "crates/linalg",
    "crates/gaussian",
    "crates/rtree",
    "crates/core",
];

/// Allocation-site method names (`x.f(...)` shapes that allocate).
const ALLOC_METHODS: [&str; 9] = [
    "push",
    "extend",
    "append",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "insert",
];

/// Allocation-site constructor paths (`Type::f(...)` shapes).
const ALLOC_TYPES: [&str; 7] = [
    "Vec",
    "Box",
    "String",
    "VecDeque",
    "BinaryHeap",
    "BTreeMap",
    "HashMap",
];

/// Allocation-site macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Blocking-acquisition method names (`x.lock()` / `x.read()` /
/// `x.write()`). `read`/`write` over-approximate into `io::Read`/
/// `io::Write` — intentionally: blocking I/O on a hot path is as bad as
/// a lock, and a genuine false positive is an allowlist entry away.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Lock-type qualifiers for path-call shapes (`Mutex::lock(&m)`).
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

/// Crates whose acquisition sites feed the `lock-order` rule: the graph
/// crates plus the observability layer, which owns the workspace's only
/// real `Mutex`. Kept separate from [`GRAPH_CRATES`] so `crates/obs`
/// does not enter the hot-path/panic-reachability universe.
pub const LOCK_CRATES: [&str; 5] = [
    "crates/linalg",
    "crates/gaussian",
    "crates/rtree",
    "crates/core",
    "crates/obs",
];

/// Acquisition method names for the lock-order graph. `write_lock`
/// covers the OLC seqlock writer side, which blocks writers against
/// each other exactly like a mutex.
const ORDER_METHODS: [&str; 4] = ["lock", "read", "write", "write_lock"];

/// Lock-type qualifiers for path-call acquisition shapes.
const ORDER_TYPES: [&str; 3] = ["Mutex", "RwLock", "VersionCell"];

/// Panic-family macros checked by the reachability rule. `debug_assert*`
/// is exempt: compiled out of release builds.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Summary counts for the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallGraphStats {
    /// Functions in the graph (non-test, graph crates).
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// `// HOT-PATH:` roots.
    pub hot_roots: usize,
    /// Public entry points (panic-reachability roots).
    pub pub_roots: usize,
    /// Lock-acquisition sites in the lock-order graph.
    pub lock_sites: usize,
    /// Held-then-acquire edges between lock classes.
    pub lock_edges: usize,
}

/// One lock-acquisition site in the lock-order graph.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock class — the receiver identifier for method shapes
    /// (`inner` in `self.inner.lock()`), the type qualifier for path
    /// shapes (`Mutex` in `Mutex::lock(&m)`). A heuristic: two locks
    /// behind the same field name share a class, which over-merges
    /// (conservative for cycle detection) rather than over-splits.
    pub class: String,
    /// Human description of the acquisition shape.
    pub desc: String,
    /// Defining file (workspace-relative).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Qualified name of the containing fn.
    pub fn_qual: String,
}

/// One held-then-acquire edge: some function acquires class `from` and
/// then — directly, or via a callee — acquires class `to` before the
/// first can be assumed released.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Class held first.
    pub from: String,
    /// Class acquired second.
    pub to: String,
    /// Human-readable evidence chain for the edge.
    pub witness: String,
    /// File of the first acquisition.
    pub path: String,
    /// Line anchoring the edge (the second acquisition or the call
    /// that reaches it).
    pub line: usize,
}

/// The merged workspace analysis plus the resolved call graph.
pub struct Analysis {
    /// Graph nodes: non-test functions of the graph crates.
    pub fns: Vec<FnInfo>,
    /// All parsed enums (workspace-wide).
    pub enums: Vec<EnumInfo>,
    /// All `// HOT-PATH:` markers (workspace-wide).
    pub hot_markers: Vec<HotPathMarker>,
    /// All `Qual::name` references (workspace-wide, incl. tests).
    pub qual_refs: Vec<QualRef>,
    /// `edges[i]` = indices of functions `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    edge_count: usize,
    /// Acquisition sites in the lock-order universe ([`LOCK_CRATES`]),
    /// sorted by (path, line).
    pub lock_sites: Vec<LockSite>,
    /// Held-then-acquire edges between distinct lock classes, deduped
    /// by (from, to) and sorted.
    pub lock_edges: Vec<LockEdge>,
}

fn crate_of(path: &str) -> &str {
    let mut parts = path.splitn(3, '/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c,
        _ => "",
    }
}

fn in_graph(path: &str) -> bool {
    GRAPH_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("{c}/src/")))
}

fn in_lock_graph(path: &str) -> bool {
    LOCK_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("{c}/src/")))
}

impl Analysis {
    /// Merges per-file analyses and resolves call edges.
    pub fn build(files: &[(String, FileAnalysis)]) -> Analysis {
        let mut fns = Vec::new();
        let mut enums = Vec::new();
        let mut hot_markers = Vec::new();
        let mut qual_refs = Vec::new();
        let mut lock_fns = Vec::new();
        for (path, fa) in files {
            // Dogfooding exclusion: the auditor's own sources mention
            // marker strings and enum names as rule data.
            if path.starts_with("crates/xtask") {
                continue;
            }
            enums.extend(fa.enums.iter().cloned());
            hot_markers.extend(fa.hot_markers.iter().cloned());
            qual_refs.extend(fa.qual_refs.iter().cloned());
            if in_graph(path) {
                fns.extend(fa.fns.iter().filter(|f| !f.in_test).cloned());
            }
            if in_lock_graph(path) {
                lock_fns.extend(fa.fns.iter().filter(|f| !f.in_test).cloned());
            }
        }
        let (lock_sites, lock_edges) = build_lock_graph(&lock_fns);

        // Name indexes.
        let mut by_qual_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if let Some(q) = &f.qual {
                by_qual_name
                    .entry((q.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
            if f.has_self {
                methods_by_name.entry(f.name.clone()).or_default().push(i);
            } else {
                free_by_name.entry(f.name.clone()).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut edge_count = 0usize;
        for i in 0..fns.len() {
            let mut targets = BTreeSet::new();
            for call in &fns[i].calls {
                resolve(
                    &fns,
                    i,
                    call,
                    &by_qual_name,
                    &methods_by_name,
                    &free_by_name,
                    &mut targets,
                );
            }
            edge_count += targets.len();
            edges[i] = targets.into_iter().collect();
        }
        Analysis {
            fns,
            enums,
            hot_markers,
            qual_refs,
            edges,
            edge_count,
            lock_sites,
            lock_edges,
        }
    }

    /// Report summary counts.
    pub fn stats(&self) -> CallGraphStats {
        CallGraphStats {
            functions: self.fns.len(),
            edges: self.edge_count,
            hot_roots: self.fns.iter().filter(|f| f.hot_marker.is_some()).count(),
            pub_roots: self.fns.iter().filter(|f| f.is_pub).count(),
            lock_sites: self.lock_sites.len(),
            lock_edges: self.lock_edges.len(),
        }
    }

    /// Multi-source BFS. Returns `pred[i] = Some(j)` for each reached
    /// node (`pred[root] = Some(root)`), `None` for unreached.
    fn reach(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut pred: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if pred[r].is_none() {
                pred[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if pred[v].is_none() {
                    pred[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        pred
    }

    /// Renders the predecessor chain `root -> ... -> target` as
    /// qualified names.
    fn chain(&self, pred: &[Option<usize>], target: usize) -> Vec<String> {
        let mut chain = vec![self.fns[target].qual_name()];
        let mut cur = target;
        // Bounded walk: a predecessor cycle cannot exceed the node count.
        for _ in 0..self.fns.len() {
            match pred[cur] {
                Some(p) if p != cur => {
                    chain.push(self.fns[p].qual_name());
                    cur = p;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }

    /// `hot-path-alloc`: no allocation site reachable from a
    /// `// HOT-PATH:` root. `.push`/`.extend`/`.append` on a receiver
    /// that is a `&mut` parameter of the enclosing function is exempt
    /// (the caller-owned-buffer shape the rule exists to encourage).
    /// Dangling markers (not attached to any `fn`) are violations too.
    pub fn check_hot_path_alloc(&self, sources: &Sources, out: &mut Vec<Violation>) {
        for m in &self.hot_markers {
            if m.attached_fn.is_none() {
                out.push(Violation {
                    rule: "hot-path-alloc",
                    path: m.path.clone(),
                    line: m.line,
                    snippet: sources.line(&m.path, m.line),
                    message: "dangling `// HOT-PATH:` marker — no `fn` starts within \
                              the attachment window below it"
                        .to_owned(),
                    severity: Severity::Error,
                    chain: Vec::new(),
                });
            }
        }
        let roots: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.hot_marker.is_some())
            .map(|(i, _)| i)
            .collect();
        let pred = self.reach(&roots);
        for (i, f) in self.fns.iter().enumerate() {
            if pred[i].is_none() {
                continue;
            }
            for call in &f.calls {
                let Some(desc) = alloc_site(f, call) else {
                    continue;
                };
                let mut chain = self.chain(&pred, i);
                chain.push(format!("<{desc}>"));
                out.push(Violation {
                    rule: "hot-path-alloc",
                    path: f.path.clone(),
                    line: call.line,
                    snippet: sources.line(&f.path, call.line),
                    message: format!(
                        "allocation site `{desc}` reachable from hot root \
                         `{}` — hot paths allocate nothing per candidate \
                         (DESIGN.md §7); reuse a caller-owned buffer",
                        chain.first().cloned().unwrap_or_default()
                    ),
                    severity: Severity::Error,
                    chain,
                });
            }
        }
    }

    /// `hot-path-lock`: no blocking lock acquisition transitively
    /// reachable from a `// HOT-PATH:` root. The whole point of the OLC
    /// seqlock (`gprq_rtree::olc`) is that tree descents synchronize
    /// through version validation instead of blocking; a `Mutex`/`RwLock`
    /// acquired under a hot root reintroduces writer-stalls-readers.
    /// Dangling markers are already reported by `check_hot_path_alloc`,
    /// so this rule only walks the reachable set.
    pub fn check_hot_path_lock(&self, sources: &Sources, out: &mut Vec<Violation>) {
        let roots: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.hot_marker.is_some())
            .map(|(i, _)| i)
            .collect();
        let pred = self.reach(&roots);
        for (i, f) in self.fns.iter().enumerate() {
            if pred[i].is_none() {
                continue;
            }
            for call in &f.calls {
                let Some(desc) = lock_site(call) else {
                    continue;
                };
                let mut chain = self.chain(&pred, i);
                chain.push(format!("<{desc}>"));
                out.push(Violation {
                    rule: "hot-path-lock",
                    path: f.path.clone(),
                    line: call.line,
                    snippet: sources.line(&f.path, call.line),
                    message: format!(
                        "blocking acquisition `{desc}` reachable from hot root \
                         `{}` — hot paths must stay lock-free (optimistic \
                         validation via `VersionCell`, or hoist the lock out of \
                         the per-candidate loop)",
                        chain.first().cloned().unwrap_or_default()
                    ),
                    severity: Severity::Error,
                    chain,
                });
            }
        }
    }

    /// `panic-reachability`: no panic-family site transitively reachable
    /// from a public entry point of the graph crates. Sites inside a
    /// function whose doc block declares `# Panics` are exempt — the
    /// contract is documented API, per the Rust API guidelines.
    pub fn check_panic_reachability(&self, sources: &Sources, out: &mut Vec<Violation>) {
        let roots: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_pub)
            .map(|(i, _)| i)
            .collect();
        let pred = self.reach(&roots);
        for (i, f) in self.fns.iter().enumerate() {
            if pred[i].is_none() || f.doc_has_panics {
                continue;
            }
            for call in &f.calls {
                let Some(desc) = panic_site(call) else {
                    continue;
                };
                let chain = self.chain(&pred, i);
                out.push(Violation {
                    rule: "panic-reachability",
                    path: f.path.clone(),
                    line: call.line,
                    snippet: sources.line(&f.path, call.line),
                    message: format!(
                        "`{desc}` reachable from public entry `{}` — return \
                         `Result`, downgrade to `debug_assert!`, or document \
                         a `# Panics` section on the containing fn",
                        chain.first().cloned().unwrap_or_default()
                    ),
                    severity: Severity::Error,
                    chain,
                });
            }
        }
    }

    /// `error-docs` (cross-file half): every variant of the listed error
    /// enums must be constructed somewhere outside tests. A reference in
    /// pattern position (match arm, `if let`) does not count.
    pub fn check_error_variants_constructed(&self, out: &mut Vec<Violation>) {
        const CHECKED_ENUMS: [&str; 3] = ["PrqError", "DegradationReason", "Verdict"];
        for e in &self.enums {
            if !CHECKED_ENUMS.contains(&e.name.as_str()) {
                continue;
            }
            for (variant, line) in &e.variants {
                let constructed = self
                    .qual_refs
                    .iter()
                    .any(|r| r.qual == e.name && &r.name == variant && !r.in_test && !r.is_pattern);
                if !constructed {
                    out.push(Violation {
                        rule: "error-docs",
                        path: e.path.clone(),
                        line: *line,
                        snippet: format!("{}::{variant}", e.name),
                        message: format!(
                            "error variant `{}::{variant}` is never constructed \
                             outside tests — dead error surface; remove it or \
                             wire it to the failure it describes",
                            e.name
                        ),
                        severity: Severity::Error,
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    /// `lock-order`: the lock classes acquired by [`LOCK_CRATES`] code
    /// must admit a single global acquisition order. Every
    /// held-then-acquire pair (within one function, or through a callee
    /// reached while a lock is plausibly held) contributes a directed
    /// edge between lock classes; a cycle in that graph means two
    /// threads interleaving the conflicting orders can deadlock. The
    /// witness chain names every acquisition around the cycle.
    pub fn check_lock_order(&self, sources: &Sources, out: &mut Vec<Violation>) {
        for cycle in find_cycles(&self.lock_edges) {
            let edge_of = |from: &String, to: &String| {
                self.lock_edges
                    .iter()
                    .find(|e| &e.from == from && &e.to == to)
            };
            let mut chain = Vec::new();
            for k in 0..cycle.len() {
                if let Some(e) = edge_of(&cycle[k], &cycle[(k + 1) % cycle.len()]) {
                    chain.push(e.witness.clone());
                }
            }
            let Some(first) = edge_of(&cycle[0], &cycle[1 % cycle.len()]) else {
                continue;
            };
            let desc = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|c| format!("`{c}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(Violation {
                rule: "lock-order",
                path: first.path.clone(),
                line: first.line,
                snippet: sources.line(&first.path, first.line),
                message: format!(
                    "lock classes form an acquisition cycle {desc} — threads \
                     interleaving these orders can deadlock; pick one global \
                     acquisition order (DESIGN.md §13)"
                ),
                severity: Severity::Error,
                chain,
            });
        }
    }
}

/// Describes `call` as a lock-order acquisition, returning the lock
/// class and a human description. Method shapes classify by receiver
/// identifier; chained receivers (`x.field().lock()`) cannot be
/// classified and are skipped — acceptable because every real
/// acquisition in this workspace names its lock field directly.
fn lock_acquisition(call: &Call) -> Option<(String, String)> {
    match call.kind {
        CallKind::Method if ORDER_METHODS.contains(&call.name.as_str()) => {
            let class = call.receiver.clone()?;
            let desc = format!(".{}() on `{class}`", call.name);
            Some((class, desc))
        }
        CallKind::Path
            if call
                .qual
                .as_deref()
                .is_some_and(|q| ORDER_TYPES.contains(&q))
                && ORDER_METHODS.contains(&call.name.as_str()) =>
        {
            let q = call.qual.clone().unwrap_or_default();
            let desc = format!("{q}::{}", call.name);
            Some((q, desc))
        }
        _ => None,
    }
}

/// Builds the lock-order graph over the non-test functions of
/// [`LOCK_CRATES`]: direct acquisition sites, a may-acquire summary per
/// function (propagated over name-resolved call edges to a fixpoint),
/// and held-then-acquire edges between distinct classes. A call at or
/// after an acquisition line is treated as made while the lock is held
/// — an over-approximation (no drop tracking), which is why edges
/// require *distinct* classes: re-acquiring the same class after a
/// drop must not read as self-deadlock.
fn build_lock_graph(fns: &[FnInfo]) -> (Vec<LockSite>, Vec<LockEdge>) {
    let n = fns.len();
    let mut by_qual_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if let Some(q) = &f.qual {
            by_qual_name
                .entry((q.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        if f.has_self {
            methods_by_name.entry(f.name.clone()).or_default().push(i);
        } else {
            free_by_name.entry(f.name.clone()).or_default().push(i);
        }
    }

    // Source ordering is by token position (from `args_range`), not by
    // line: two acquisitions on one line still order.
    let mut sites = Vec::new();
    let mut direct: Vec<Vec<(String, String, usize, usize)>> = vec![Vec::new(); n];
    let mut call_targets: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for (i, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let pos = call.args_range.map_or(usize::MAX, |(lo, _)| lo);
            if let Some((class, desc)) = lock_acquisition(call) {
                direct[i].push((class.clone(), desc.clone(), call.line, pos));
                sites.push(LockSite {
                    class,
                    desc,
                    path: f.path.clone(),
                    line: call.line,
                    fn_qual: f.qual_name(),
                });
            }
            let mut targets = BTreeSet::new();
            resolve(
                fns,
                i,
                call,
                &by_qual_name,
                &methods_by_name,
                &free_by_name,
                &mut targets,
            );
            call_targets[i].extend(targets.into_iter().map(|j| (pos, call.line, j)));
        }
    }
    sites.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    // May-acquire summaries: class -> witness chain, to a fixpoint over
    // the call edges. Bounded: each pass adds at least one (fn, class)
    // pair or terminates.
    let mut acq: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); n];
    for i in 0..n {
        for (class, desc, line, _) in &direct[i] {
            acq[i]
                .entry(class.clone())
                .or_insert_with(|| format!("<{desc}> at {}:{line}", fns[i].path));
        }
    }
    for _ in 0..64 {
        let mut changed = false;
        for i in 0..n {
            let mut add = Vec::new();
            for &(_, _, j) in &call_targets[i] {
                for (class, w) in &acq[j] {
                    if !acq[i].contains_key(class) {
                        add.push((class.clone(), format!("`{}` -> {w}", fns[j].qual_name())));
                    }
                }
            }
            for (class, w) in add {
                if let std::collections::btree_map::Entry::Vacant(e) = acq[i].entry(class) {
                    e.insert(w);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edge_map: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        for (class, desc, line, pos) in &direct[i] {
            for (c2, d2, l2, p2) in &direct[i] {
                if p2 > pos && c2 != class {
                    edge_map
                        .entry((class.clone(), c2.clone()))
                        .or_insert_with(|| LockEdge {
                            from: class.clone(),
                            to: c2.clone(),
                            witness: format!(
                                "`{}` acquires `{class}` (<{desc}> at {}:{line}) \
                                 then `{c2}` (<{d2}> at {}:{l2})",
                                f.qual_name(),
                                f.path,
                                f.path,
                            ),
                            path: f.path.clone(),
                            line: *l2,
                        });
                }
            }
            for &(call_pos, call_line, j) in &call_targets[i] {
                if call_pos < *pos {
                    continue;
                }
                for (c2, w) in &acq[j] {
                    if c2 != class {
                        edge_map
                            .entry((class.clone(), c2.clone()))
                            .or_insert_with(|| LockEdge {
                                from: class.clone(),
                                to: c2.clone(),
                                witness: format!(
                                    "`{}` acquires `{class}` (<{desc}> at {}:{line}), \
                                     then calls `{}` (line {call_line}) which \
                                     acquires `{c2}`: {w}",
                                    f.qual_name(),
                                    f.path,
                                    fns[j].qual_name(),
                                ),
                                path: f.path.clone(),
                                line: call_line,
                            });
                    }
                }
            }
        }
    }
    (sites, edge_map.into_values().collect())
}

/// Simple cycles of the lock-class graph, each reported once with its
/// lexicographically smallest class first. Bounded: at most 10 cycles,
/// path length at most 12.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        if found.len() >= 10 {
            break;
        }
        let mut path = vec![start];
        cycle_dfs(start, start, &adj, &mut path, &mut found);
    }
    found.into_iter().collect()
}

/// DFS restricted to nodes lexicographically greater than `start`, so
/// every simple cycle is discovered exactly once, rooted at its
/// minimal node.
fn cycle_dfs<'a>(
    cur: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    if path.len() > 12 || found.len() >= 10 {
        return;
    }
    let Some(nexts) = adj.get(cur) else {
        return;
    };
    for &nxt in nexts {
        if nxt == start {
            found.insert(path.iter().map(|s| (*s).to_owned()).collect());
        } else if nxt > start && !path.contains(&nxt) {
            path.push(nxt);
            cycle_dfs(nxt, start, adj, path, found);
            path.pop();
        }
    }
}

/// Describes `call` as an allocation site, if it is one.
fn alloc_site(f: &FnInfo, call: &Call) -> Option<String> {
    match call.kind {
        CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("{}!", call.name))
        }
        CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
            // Caller-owned buffer exemption: growth of a `&mut` parameter
            // is the caller's capacity, amortized across the query.
            let grows_param = matches!(call.name.as_str(), "push" | "extend" | "append")
                && call
                    .receiver
                    .as_deref()
                    .is_some_and(|r| f.params.iter().any(|p| p.by_mut_ref && p.name == r));
            if grows_param {
                None
            } else {
                Some(format!(".{}()", call.name))
            }
        }
        CallKind::Path
            if call
                .qual
                .as_deref()
                .is_some_and(|q| ALLOC_TYPES.contains(&q)) =>
        {
            Some(format!(
                "{}::{}",
                call.qual.as_deref().unwrap_or(""),
                call.name
            ))
        }
        _ => None,
    }
}

/// Describes `call` as a blocking lock acquisition, if it is one.
fn lock_site(call: &Call) -> Option<String> {
    match call.kind {
        CallKind::Method if LOCK_METHODS.contains(&call.name.as_str()) => {
            Some(format!(".{}()", call.name))
        }
        CallKind::Path
            if call
                .qual
                .as_deref()
                .is_some_and(|q| LOCK_TYPES.contains(&q))
                && LOCK_METHODS.contains(&call.name.as_str()) =>
        {
            Some(format!(
                "{}::{}",
                call.qual.as_deref().unwrap_or(""),
                call.name
            ))
        }
        _ => None,
    }
}

/// Describes `call` as a panic-family site, if it is one.
fn panic_site(call: &Call) -> Option<String> {
    match call.kind {
        CallKind::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("{}!", call.name))
        }
        CallKind::Method if matches!(call.name.as_str(), "unwrap" | "expect") => {
            Some(format!(".{}()", call.name))
        }
        _ => None,
    }
}

fn resolve(
    fns: &[FnInfo],
    caller: usize,
    call: &Call,
    by_qual_name: &BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: &BTreeMap<String, Vec<usize>>,
    free_by_name: &BTreeMap<String, Vec<usize>>,
    targets: &mut BTreeSet<usize>,
) {
    match call.kind {
        CallKind::Macro => {}
        CallKind::Method => {
            // Dynamic-dispatch over-approximation: every method of this
            // name, workspace-wide.
            if let Some(c) = methods_by_name.get(&call.name) {
                targets.extend(c.iter().copied());
            }
        }
        CallKind::Path => {
            let qual = call.qual.as_deref().unwrap_or("");
            if let Some(c) = by_qual_name.get(&(qual.to_owned(), call.name.clone())) {
                targets.extend(c.iter().copied());
            } else if qual == "Self" || qual == "self" {
                // `Self::helper()` — functions sharing the caller's impl
                // qualifier, else any free fn of that name.
                let caller_qual = fns[caller].qual.as_deref();
                let mut matched = false;
                for (i, f) in fns.iter().enumerate() {
                    if f.name == call.name && f.qual.as_deref() == caller_qual {
                        targets.insert(i);
                        matched = true;
                    }
                }
                if !matched {
                    pick_free(fns, caller, &call.name, free_by_name, targets);
                }
            } else if qual.starts_with(|c: char| c.is_lowercase()) {
                // Module-qualified free call (`theta_region::r_theta_exact`).
                pick_free(fns, caller, &call.name, free_by_name, targets);
            }
            // Uppercase qualifier with no workspace match: external type
            // (`Vec::new`, `f64::sqrt`) — no edge.
        }
        CallKind::Free => {
            pick_free(fns, caller, &call.name, free_by_name, targets);
        }
    }
}

/// Free-call resolution: same file beats same crate beats workspace.
fn pick_free(
    fns: &[FnInfo],
    caller: usize,
    name: &str,
    free_by_name: &BTreeMap<String, Vec<usize>>,
    targets: &mut BTreeSet<usize>,
) {
    let Some(cands) = free_by_name.get(name) else {
        return;
    };
    let caller_path = fns[caller].path.as_str();
    let caller_crate = crate_of(caller_path);
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].path == caller_path)
        .collect();
    if !same_file.is_empty() {
        targets.extend(same_file);
        return;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| crate_of(&fns[i].path) == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        targets.extend(same_crate);
        return;
    }
    targets.extend(cands.iter().copied());
}

/// Raw file sources keyed by workspace-relative path, for snippet
/// extraction in diagnostics.
#[derive(Default)]
pub struct Sources {
    map: BTreeMap<String, String>,
}

impl Sources {
    /// Registers one file's source text.
    pub fn insert(&mut self, path: &str, source: &str) {
        self.map.insert(path.to_owned(), source.to_owned());
    }

    /// The trimmed text of `line` (1-based) in `path`, or empty.
    pub fn line(&self, path: &str, line: usize) -> String {
        self.map
            .get(path)
            .and_then(|s| s.lines().nth(line.saturating_sub(1)))
            .unwrap_or("")
            .trim()
            .to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn analyze(files: &[(&str, &str)]) -> (Analysis, Sources) {
        let mut parsed = Vec::new();
        let mut sources = Sources::default();
        for (path, src) in files {
            parsed.push((path.to_string(), parse_file(path, src, &lex(src))));
            sources.insert(path, src);
        }
        (Analysis::build(&parsed), sources)
    }

    const HOT_CALLER: &str = "crates/core/src/hot.rs";

    #[test]
    fn alloc_two_calls_below_a_hot_root_is_found_with_chain() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: per-candidate predicate\n\
             pub fn passes(x: f64) -> bool { helper(x) }\n\
             fn helper(x: f64) -> bool { deep(x) }\n\
             fn deep(x: f64) -> bool { let v = Vec::new(); v.is_empty() }\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_alloc(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "hot-path-alloc");
        assert_eq!(out[0].line, 4);
        assert_eq!(out[0].chain, vec!["passes", "helper", "deep", "<Vec::new>"]);
    }

    #[test]
    fn push_to_mut_param_is_exempt_but_local_push_is_not() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: descent\n\
             pub fn descend(out: &mut Vec<u32>) { out.push(1); local(); }\n\
             fn local() { let mut v: Vec<u32> = Vec::with_capacity(4); v.push(2); }\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_alloc(&s, &mut out);
        // `out.push` exempt; `Vec::with_capacity` + `v.push` both flagged.
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out.iter().all(|v| v.line == 3));
    }

    #[test]
    fn panic_reachable_from_pub_entry_unless_documented() {
        let (a, s) = analyze(&[(
            "crates/gaussian/src/p.rs",
            "pub fn entry(x: f64) -> f64 { inner(x) }\n\
             fn inner(x: f64) -> f64 { assert!(x > 0.0); x }\n\
             /// # Panics\n\
             pub fn documented(x: f64) -> f64 { assert!(x > 0.0); x }\n\
             fn unreached() { panic!(\"never\") }\n",
        )]);
        let mut out = Vec::new();
        a.check_panic_reachability(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].chain, vec!["entry", "inner"]);
    }

    #[test]
    fn method_calls_over_approximate_to_all_impls() {
        let (a, s) = analyze(&[(
            "crates/core/src/e.rs",
            "pub fn run(ev: &dyn Ev) { ev.probability(); }\n\
             struct A; impl A { fn probability(&self) { panic!(\"boom\") } }\n",
        )]);
        let mut out = Vec::new();
        a.check_panic_reachability(&s, &mut out);
        assert_eq!(out.len(), 1, "dynamic dispatch must reach impls: {out:#?}");
        assert_eq!(out[0].chain, vec!["run", "A::probability"]);
    }

    #[test]
    fn dangling_hot_marker_is_flagged() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: attached to nothing\npub struct X;\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_alloc(&s, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("dangling"));
    }

    #[test]
    fn unconstructed_error_variant_is_flagged_pattern_does_not_count() {
        let (a, _) = analyze(&[(
            "crates/core/src/error.rs",
            "pub enum PrqError { Used(f64), OnlyMatched, Dead }\n\
             pub fn mk(x: f64) -> PrqError { PrqError::Used(x) }\n\
             pub fn show(e: &PrqError) -> u8 {\n\
                 match e { PrqError::OnlyMatched => 1, _ => 0 }\n\
             }\n",
        )]);
        let mut out = Vec::new();
        a.check_error_variants_constructed(&mut out);
        let names: Vec<&str> = out.iter().map(|v| v.snippet.as_str()).collect();
        assert!(names.contains(&"PrqError::OnlyMatched"), "{out:#?}");
        assert!(names.contains(&"PrqError::Dead"), "{out:#?}");
        assert!(!names.contains(&"PrqError::Used"), "{out:#?}");
    }

    #[test]
    fn lock_two_calls_below_a_hot_root_is_found_with_chain() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: per-candidate predicate\n\
             pub fn passes(x: f64) -> bool { helper(x) }\n\
             fn helper(x: f64) -> bool { deep(x) }\n\
             fn deep(_x: f64) -> bool { self.stats.lock().hit(); true }\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_lock(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "hot-path-lock");
        assert_eq!(out[0].line, 4);
        assert_eq!(out[0].chain, vec!["passes", "helper", "deep", "<.lock()>"]);
    }

    #[test]
    fn lock_outside_the_hot_reachable_set_is_not_flagged() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: descent\n\
             pub fn descend(x: f64) -> f64 { x + 1.0 }\n\
             pub fn cold_setup(reg: &Registry) { reg.inner.lock().clear(); }\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_lock(&s, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn rwlock_read_write_and_path_shapes_are_lock_sites() {
        let (a, s) = analyze(&[(
            HOT_CALLER,
            "// HOT-PATH: scorer\n\
             pub fn score(s: &Shared) -> f64 { *s.table.read() + peek(s) }\n\
             fn peek(s: &Shared) -> f64 { *RwLock::write(&s.table) }\n",
        )]);
        let mut out = Vec::new();
        a.check_hot_path_lock(&s, &mut out);
        let descs: Vec<&str> = out
            .iter()
            .filter_map(|v| v.chain.last().map(String::as_str))
            .collect();
        assert!(descs.contains(&"<.read()>"), "{out:#?}");
        assert!(descs.contains(&"<RwLock::write>"), "{out:#?}");
    }

    #[test]
    fn lock_order_cycle_is_found_with_interprocedural_witness() {
        let (a, s) = analyze(&[(
            "crates/core/src/locks.rs",
            "pub fn ab(x: &S) { x.a.lock(); x.b.lock(); }\n\
             pub fn bc(x: &S) { x.b.lock(); x.c.lock(); }\n\
             pub fn ca(x: &S) { x.c.lock(); helper(x); }\n\
             fn helper(x: &S) { x.a.lock(); }\n",
        )]);
        assert_eq!(a.stats().lock_sites, 6);
        let mut out = Vec::new();
        a.check_lock_order(&s, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "lock-order");
        assert!(
            out[0].message.contains("`a` -> `b` -> `c` -> `a`"),
            "{}",
            out[0].message
        );
        // The witness chain walks every edge of the cycle, including the
        // interprocedural hop through `helper`.
        assert_eq!(out[0].chain.len(), 3, "{out:#?}");
        assert!(out[0].chain[2].contains("helper"), "{out:#?}");
    }

    #[test]
    fn consistent_lock_order_produces_no_cycle() {
        let (a, s) = analyze(&[(
            "crates/obs/src/locks.rs",
            "pub fn one(x: &S) { x.a.lock(); x.b.lock(); }\n\
             pub fn two(x: &S) { x.a.lock(); x.b.lock(); }\n",
        )]);
        assert_eq!(a.stats().lock_sites, 4);
        assert_eq!(a.stats().lock_edges, 1);
        let mut out = Vec::new();
        a.check_lock_order(&s, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn repeated_same_class_acquisition_is_not_a_cycle() {
        // Drop-then-reacquire of one class must not read as deadlock.
        let (a, s) = analyze(&[(
            "crates/core/src/locks.rs",
            "pub fn twice(x: &S) { x.a.lock(); x.a.lock(); }\n",
        )]);
        assert_eq!(a.stats().lock_edges, 0);
        let mut out = Vec::new();
        a.check_lock_order(&s, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn vec_new_does_not_resolve_to_workspace_constructors() {
        let (a, _) = analyze(&[(
            "crates/rtree/src/t.rs",
            "pub struct RTree; impl RTree { pub fn new() -> Self { panic!(\"ctor\") } }\n\
             // HOT-PATH: leaf predicate\n\
             pub fn hot() -> Vec<u32> { Vec::new() }\n",
        )]);
        // `Vec::new` must not create an edge to `RTree::new`.
        let hot = a.fns.iter().position(|f| f.name == "hot").unwrap();
        assert!(a.edges[hot].is_empty(), "edges: {:?}", a.edges[hot]);
    }
}
