//! The audit rules.
//!
//! Every rule is a pure function over the lexed token stream (plus raw
//! source for the comment-marker rules) of one file. See DESIGN.md
//! §"Invariants & static analysis" for the rationale behind each rule.

use crate::lexer::{Tok, TokKind};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit unless allowlisted.
    Error,
    /// Reported for visibility; never fails the audit. Used by the
    /// heuristic indexing check, whose token-level detection cannot
    /// reach zero false positives without type information.
    Warning,
}

/// One rule finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule identifier (used in the allowlist).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source line for context (and allowlist matching).
    pub snippet: String,
    /// Human explanation.
    pub message: String,
    /// Error or warning.
    pub severity: Severity,
    /// For call-graph rules: the `root -> ... -> site` path that makes
    /// the site reachable. Empty for single-site rules.
    pub chain: Vec<String>,
}

/// An indexed `// INVARIANT:` marker.
#[derive(Debug, Clone)]
pub struct InvariantMarker {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Marker text after `INVARIANT:`.
    pub text: String,
}

/// Which rule families apply to a file. Decided by
/// [`crate::workspace::classify`] from the file's location.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// R1: panic-free library code (`unwrap`/`expect`/`panic!`/
    /// `unreachable!`/`todo!`/`unimplemented!` banned outside tests).
    pub panic_free: bool,
    /// R2: no unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`).
    pub seeded_rng: bool,
    /// R3: no float-literal `==`/`!=` comparisons.
    pub float_eq: bool,
    /// R1b: heuristic indexing-without-`get` check.
    pub indexing: bool,
    /// R1b at error severity (`linalg`/`rtree`, where every index must
    /// be justified or allowlisted).
    pub indexing_strict: bool,
    /// R6: `as` casts to a narrower integer type.
    pub lossy_cast: bool,
    /// R7: public `Result`-returning fns must document `# Errors`.
    pub error_docs: bool,
    /// C1: every `unsafe` block/fn/impl/trait must carry a
    /// `// SAFETY:` comment within the attachment window above it.
    pub unsafe_safety: bool,
    /// C2: manual `unsafe impl Send`/`Sync` is always an error — the
    /// allowlist (which requires a written reason) is the only way to
    /// ship one.
    pub send_sync: bool,
    /// C3: atomic operations must name an explicit `Ordering` at the
    /// call site, `Relaxed` requires an `// ORDERING:` comment, and
    /// `static mut` is banned outright.
    pub atomic_ordering: bool,
    /// C4: values derived under a `VersionCell::optimistic_read` guard
    /// must be dominated by a `guard.validate()` before escaping (the
    /// [`crate::dataflow`] rule `olc-use-before-validate`).
    pub olc_protocol: bool,
    /// C5: closures passed to retrying combinators (and fns marked
    /// `// RETRY-SAFE:`) must be side-effect-free (`retry-purity`).
    pub retry_purity: bool,
}

/// Trimmed text of `line` (1-based) — the violation context line.
pub fn snippet(source: &str, line: usize) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_owned()
}

/// Computes the token-index ranges covered by `#[cfg(test)]` /
/// `#[cfg(all(test, ...))]` / `#[test]` items: from the attribute to the
/// end of the item's brace block.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            if let Some(attr_end) = match_test_attribute(toks, i) {
                // Find the opening brace of the annotated item, skipping
                // further attributes and the item header.
                let mut j = attr_end;
                let mut found = None;
                while j < toks.len() {
                    if toks[j].kind == TokKind::Punct {
                        match toks[j].text.as_str() {
                            "{" => {
                                found = Some(j);
                                break;
                            }
                            // `#[cfg(test)] use foo;` or `mod tests;` —
                            // no block to skip.
                            ";" => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if let Some(open) = found {
                    let close = matching_brace(toks, open);
                    regions.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

/// If a `#[cfg(test)]`-like or `#[test]` attribute starts at token `i`
/// (the `#`), returns the index one past its closing `]`.
fn match_test_attribute(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return None;
    }
    let close = matching_delim(toks, i + 1, "[", "]");
    let inner: Vec<&str> = toks[i + 2..close].iter().map(|t| t.text.as_str()).collect();
    let is_test_attr = match inner.as_slice() {
        ["test"] => true,
        ["cfg", "(", "test", ")"] => true,
        _ => {
            // #[cfg(all(test, ...))] and #[cfg(any(test, ...))]: treat as
            // test-only — over-approximating keeps the audit quiet on
            // genuinely test-gated code. (any(test, …) can also compile
            // into non-test builds; none exist in this workspace.)
            inner.len() > 4
                && inner[0] == "cfg"
                && matches!(inner.get(2), Some(&"all") | Some(&"any"))
                && inner.contains(&"test")
        }
    };
    if is_test_attr {
        Some(close + 1)
    } else {
        None
    }
}

fn matching_delim(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            if toks[j].text == open {
                depth += 1;
            } else if toks[j].text == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn matching_brace(toks: &[Tok], open_idx: usize) -> usize {
    matching_delim(toks, open_idx, "{", "}")
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// Integer types an `as` cast can truncate into (rule R6). `u128`/
/// `i128` can only widen from the types this codebase uses.
const NARROW_INT_TYPES: [&str; 10] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Collects identifiers that are heuristically in-bounds as indices
/// within one fn body: `for`-loop binding names and parameters of
/// closures passed to `from_fn` (the `Vector::from_fn(|i| a[i] + b[i])`
/// idiom, where the closure index ranges over the same `D`).
fn bounded_idents(toks: &[Tok], open: usize, close: usize) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    let mut i = open;
    while i < close {
        if toks[i].kind == TokKind::Ident && toks[i].text == "for" {
            // Binding idents up to `in` (covers `for (i, x) in ...`).
            let mut j = i + 1;
            while j < close && text(j) != "in" && text(j) != "{" {
                if toks[j].kind == TokKind::Ident {
                    set.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
        } else if toks[i].kind == TokKind::Ident
            && toks[i].text == "from_fn"
            && text(i + 1) == "("
            && text(i + 2) == "|"
        {
            let mut j = i + 3;
            while j < close && text(j) != "|" {
                if toks[j].kind == TokKind::Ident {
                    set.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
        } else if text(i) == "("
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::IntLit)
            && matches!(text(i + 2), ".." | "..=")
        {
            // `(0..D).all(|i| ...)` — an adapter over a literal-start
            // range: the closure parameter is as bounded as a `for`
            // counter over the same range.
            let close_paren = matching_delim(toks, i, "(", ")");
            if text(close_paren + 1) == "."
                && text(close_paren + 3) == "("
                && text(close_paren + 4) == "|"
            {
                let mut j = close_paren + 5;
                while j < close && text(j) != "|" {
                    if toks[j].kind == TokKind::Ident {
                        set.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    set
}

/// R1 + R1b + R2 + R3 + R6: token-stream rules over one file. The
/// parsed `analysis` scopes the indexing check to expression positions
/// (function bodies) and supplies the bounded-index exemptions.
pub fn check_tokens(
    path: &str,
    source: &str,
    toks: &[Tok],
    rules: RuleSet,
    analysis: &crate::parser::FileAnalysis,
    out: &mut Vec<Violation>,
) {
    let regions = test_regions(toks);
    // Per-fn body ranges with their bounded index idents, for R1b.
    let fn_bodies: Vec<((usize, usize), std::collections::BTreeSet<String>)> = analysis
        .fns
        .iter()
        .filter_map(|f| f.body)
        .map(|(a, b)| ((a, b), bounded_idents(toks, a, b)))
        .collect();
    for (i, tok) in toks.iter().enumerate() {
        let in_test = in_regions(&regions, i);
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);

        // R1: panic-family calls in library code.
        if rules.panic_free && !in_test && tok.kind == TokKind::Ident {
            let is_method = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
            let is_macro = next.is_some_and(|x| x.kind == TokKind::Punct && x.text == "!");
            let flagged = match tok.text.as_str() {
                "unwrap" | "expect" => is_method,
                "panic" | "unreachable" | "todo" | "unimplemented" => is_macro,
                _ => false,
            };
            if flagged {
                out.push(Violation {
                    rule: "panic-free",
                    path: path.to_owned(),
                    line: tok.line,
                    snippet: snippet(source, tok.line),
                    message: format!(
                        "`{}` in library code — return `PrqError`/`Result` instead \
                         (hot-path code must not panic)",
                        tok.text
                    ),
                    severity: Severity::Error,
                    chain: Vec::new(),
                });
            }
        }

        // R1b (heuristic): indexing on an expression. Parser-scoped to
        // fn bodies, so attribute/type/pattern positions never fire.
        if rules.indexing
            && !in_test
            && tok.kind == TokKind::Punct
            && tok.text == "["
            && prev.is_some_and(|p| {
                (p.kind == TokKind::Ident
                    && !matches!(
                        p.text.as_str(),
                        // Keywords that legitimately precede `[`:
                        // slice patterns, array types/expressions.
                        "mut" | "ref" | "in" | "return" | "break" | "else" | "dyn" | "as"
                            | "let"
                    ))
                    || (p.kind == TokKind::Punct && (p.text == ")" || p.text == "]"))
            })
            // Full-range slicing `x[..]` cannot panic.
            && !next.is_some_and(|x| x.kind == TokKind::Punct && x.text == "..")
        {
            // Innermost enclosing fn body (nested fns have smaller
            // ranges); outside any body = type/const position, skip.
            let body = fn_bodies
                .iter()
                .filter(|((a, b), _)| i > *a && i < *b)
                .min_by_key(|((a, b), _)| b - a);
            if let Some((_, bounded)) = body {
                let close = matching_delim(toks, i, "[", "]");
                let index_toks = &toks[i + 1..close.min(toks.len())];
                let all_bounded = !index_toks.is_empty()
                    && index_toks.iter().any(|t| t.kind == TokKind::Ident)
                    && index_toks.iter().all(|t| match t.kind {
                        TokKind::Ident => bounded.contains(&t.text),
                        TokKind::Punct => matches!(t.text.as_str(), "," | "(" | ")"),
                        _ => false,
                    });
                if !all_bounded {
                    let severity = if rules.indexing_strict {
                        Severity::Error
                    } else {
                        Severity::Warning
                    };
                    out.push(Violation {
                        rule: "indexing",
                        path: path.to_owned(),
                        line: tok.line,
                        snippet: snippet(source, tok.line),
                        message: format!(
                            "possible panicking index — prefer `.get()`, a bounded \
                             loop counter, or allowlist with a bounds argument \
                             (heuristic{})",
                            if rules.indexing_strict {
                                ""
                            } else {
                                "; warning only"
                            }
                        ),
                        severity,
                        chain: Vec::new(),
                    });
                }
            }
        }

        // R6: `as` cast to a type that can truncate the value.
        if rules.lossy_cast
            && !in_test
            && tok.kind == TokKind::Ident
            && tok.text == "as"
            && next.is_some_and(|x| {
                x.kind == TokKind::Ident && NARROW_INT_TYPES.contains(&x.text.as_str())
            })
        {
            out.push(Violation {
                rule: "lossy-cast",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: format!(
                    "`as {}` can silently truncate — use `try_from` with an error \
                     path, or allowlist with an argument for why the value always \
                     fits",
                    next.map_or("", |x| x.text.as_str())
                ),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }

        // R2: unseeded RNG sources.
        if rules.seeded_rng
            && tok.kind == TokKind::Ident
            && matches!(
                tok.text.as_str(),
                "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng"
            )
        {
            out.push(Violation {
                rule: "unseeded-rng",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: format!(
                    "`{}` breaks reproducibility — derive every stream from an \
                     explicit seed (`StdRng::seed_from_u64`)",
                    tok.text
                ),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }

        // R3: float-literal equality.
        if rules.float_eq
            && !in_test
            && tok.kind == TokKind::Punct
            && (tok.text == "==" || tok.text == "!=")
            && (prev.is_some_and(|p| p.kind == TokKind::FloatLit)
                || next.is_some_and(|x| x.kind == TokKind::FloatLit))
        {
            out.push(Violation {
                rule: "float-eq",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: "direct float equality — use a tolerance helper, or allowlist \
                          with a justification if the exact comparison is intentional \
                          (e.g. an exact-zero boundary guard)"
                    .to_owned(),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }
    }
}

/// R4: crate roots must carry the two workspace-wide hygiene attributes.
pub fn check_crate_root(path: &str, source: &str, out: &mut Vec<Violation>) {
    for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        if !source.contains(attr) {
            out.push(Violation {
                rule: "crate-root-attrs",
                path: path.to_owned(),
                line: 1,
                snippet: String::new(),
                message: format!("crate root is missing `{attr}`"),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }
    }
}

/// Names of functions that implement conservative lookups and therefore
/// must carry an `// INVARIANT:` marker (rule R5). Matched within the
/// files listed in [`crate::workspace::INVARIANT_FILES`].
fn needs_invariant_marker(fn_name: &str) -> bool {
    fn_name.starts_with("lookup") || fn_name == "r_theta_exact" || fn_name == "with_r_theta"
}

/// R5a: collect `// INVARIANT:` markers from raw source.
pub fn collect_invariants(path: &str, source: &str, out: &mut Vec<InvariantMarker>) {
    for (idx, raw) in source.lines().enumerate() {
        if let Some(pos) = raw.find("// INVARIANT:") {
            out.push(InvariantMarker {
                path: path.to_owned(),
                line: idx + 1,
                text: raw[pos + "// INVARIANT:".len()..].trim().to_owned(),
            });
        }
    }
}

/// R5b: in conservative-lookup files, every lookup function must have a
/// marker within the `WINDOW` lines above its `fn` line.
pub fn check_invariant_markers(path: &str, source: &str, out: &mut Vec<Violation>) {
    const WINDOW: usize = 16;
    let lines: Vec<&str> = source.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        let Some(rest) = trimmed
            .strip_prefix("pub fn ")
            .or_else(|| trimmed.strip_prefix("fn "))
        else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !needs_invariant_marker(&name) {
            continue;
        }
        let start = idx.saturating_sub(WINDOW);
        let has_marker = lines[start..idx]
            .iter()
            .any(|l| l.contains("// INVARIANT:"));
        if !has_marker {
            out.push(Violation {
                rule: "invariant-marker",
                path: path.to_owned(),
                line: idx + 1,
                snippet: trimmed.trim_end().to_owned(),
                message: format!(
                    "conservative-lookup function `{name}` has no `// INVARIANT:` \
                     marker in the {WINDOW} lines above it — document why the \
                     returned bound never under-covers"
                ),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }
    }
}

/// R7 (per-file half): every public `Result`-returning function must
/// carry an `# Errors` doc section, so the failure contract is part of
/// the API surface. Trait methods and private helpers are exempt (the
/// contract belongs on the public inherent API).
pub fn check_error_docs(
    path: &str,
    source: &str,
    analysis: &crate::parser::FileAnalysis,
    out: &mut Vec<Violation>,
) {
    for f in &analysis.fns {
        if !f.is_pub || !f.returns_result || f.in_test || f.doc_has_errors {
            continue;
        }
        out.push(Violation {
            rule: "error-docs",
            path: path.to_owned(),
            line: f.line,
            snippet: snippet(source, f.line),
            message: format!(
                "public `Result`-returning fn `{}` has no `# Errors` doc \
                 section — document when and why it fails",
                f.qual_name()
            ),
            severity: Severity::Error,
            chain: Vec::new(),
        });
    }
}

/// Attachment window for justification comments (`// SAFETY:`,
/// `// ORDERING:`): the comment must sit on the site's line or within
/// this many lines above it. Same width as the `// INVARIANT:` window.
const COMMENT_WINDOW: usize = 16;

/// Does `needle` occur on the site's line or within [`COMMENT_WINDOW`]
/// lines above it? (`line` is 1-based.)
fn has_comment_near(lines: &[&str], line: usize, needle: &str) -> bool {
    let idx = line.saturating_sub(1).min(lines.len().saturating_sub(1));
    let start = idx.saturating_sub(COMMENT_WINDOW);
    lines
        .get(start..=idx)
        .unwrap_or(&[])
        .iter()
        .any(|l| l.contains(needle))
}

/// C1 `unsafe-safety-comment`: every `unsafe` site outside tests must
/// carry a `// SAFETY:` comment within the attachment window. The sites
/// come from the parser's flat-scan inventory, so string literals never
/// match and nested `unsafe { unsafe { } }` blocks are each audited.
pub fn check_unsafe_safety(
    path: &str,
    source: &str,
    analysis: &crate::parser::FileAnalysis,
    out: &mut Vec<Violation>,
) {
    let lines: Vec<&str> = source.lines().collect();
    for site in &analysis.unsafe_sites {
        if site.in_test || has_comment_near(&lines, site.line, "// SAFETY:") {
            continue;
        }
        out.push(Violation {
            rule: "unsafe-safety-comment",
            path: path.to_owned(),
            line: site.line,
            snippet: snippet(source, site.line),
            message: format!(
                "`unsafe` {} has no `// SAFETY:` comment within the \
                 {COMMENT_WINDOW} lines above it — state the proof obligation \
                 being discharged, not just that the code was reviewed",
                site.kind.label()
            ),
            severity: Severity::Error,
            chain: Vec::new(),
        });
    }
}

/// C2 `send-sync-audit`: a manual `unsafe impl Send`/`Sync` asserts a
/// thread-safety proof the compiler cannot check, so each one is an
/// error until an allowlist entry records who audited it and why the
/// type's fields really are safe to move/share across threads.
pub fn check_send_sync(
    path: &str,
    source: &str,
    analysis: &crate::parser::FileAnalysis,
    out: &mut Vec<Violation>,
) {
    for im in &analysis.impls {
        let is_marker = matches!(im.trait_name.as_deref(), Some("Send") | Some("Sync"));
        if !im.is_unsafe || im.in_test || !is_marker {
            continue;
        }
        out.push(Violation {
            rule: "send-sync-audit",
            path: path.to_owned(),
            line: im.line,
            snippet: snippet(source, im.line),
            message: format!(
                "manual `unsafe impl {} for {}` — every hand-written \
                 thread-safety assertion must be allowlisted with the \
                 audit argument (which field forbids the auto impl and \
                 why it is nonetheless safe)",
                im.trait_name.as_deref().unwrap_or(""),
                im.self_ty.as_deref().unwrap_or("_"),
            ),
            severity: Severity::Error,
            chain: Vec::new(),
        });
    }
}

/// Method names that are unambiguously atomic operations in this
/// workspace: every call must name an explicit `Ordering` in its
/// argument list.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
];

/// The five memory-ordering variant names.
const ORDERING_NAMES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// C3 `atomic-ordering`: three checks in one pass.
///
/// * `static mut` is banned — use an atomic or a lock.
/// * An atomic method call (`ATOMIC_METHODS`) whose argument list
///   names no `Ordering` variant forwards a variable ordering; the
///   ordering decision must be visible at the call site.
/// * `Relaxed` anywhere in the argument list requires an
///   `// ORDERING:` comment within the attachment window arguing why
///   no synchronization edge is needed.
///
/// `.swap(...)` is atomic only when an `Ordering` appears in its
/// arguments (`slice::swap(i, j)` shares the name); and a nested
/// atomic call inside another's argument list can satisfy the outer
/// call's ordering scan — a known token-level over-approximation, the
/// nested shape does not occur in first-party code.
pub fn check_atomic_ordering(path: &str, source: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let regions = test_regions(toks);
    let lines: Vec<&str> = source.lines().collect();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || in_regions(&regions, i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);

        if tok.text == "static" && next.is_some_and(|x| x.kind == TokKind::Ident && x.text == "mut")
        {
            out.push(Violation {
                rule: "atomic-ordering",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: "`static mut` is banned — every access is an unsynchronized \
                          data race waiting to happen; use an atomic or a lock"
                    .to_owned(),
                severity: Severity::Error,
                chain: Vec::new(),
            });
            continue;
        }

        let is_method_call = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".")
            && next.is_some_and(|x| x.kind == TokKind::Punct && x.text == "(");
        let maybe_atomic = ATOMIC_METHODS.contains(&tok.text.as_str()) || tok.text == "swap";
        if !is_method_call || !maybe_atomic {
            continue;
        }
        let close = matching_delim(toks, i + 1, "(", ")");
        let orderings: Vec<&str> = toks[i + 2..close.min(toks.len())]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && ORDERING_NAMES.contains(&t.text.as_str()))
            .map(|t| t.text.as_str())
            .collect();
        if tok.text == "swap" && orderings.is_empty() {
            // `slice::swap(i, j)` etc. — not an atomic op.
            continue;
        }
        if orderings.is_empty() {
            out.push(Violation {
                rule: "atomic-ordering",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: format!(
                    "atomic `.{}(..)` names no explicit `Ordering` — the memory \
                     ordering is a correctness decision that must be visible at \
                     the call site, not forwarded through a variable",
                    tok.text
                ),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        } else if orderings.contains(&"Relaxed")
            && !has_comment_near(&lines, tok.line, "// ORDERING:")
        {
            out.push(Violation {
                rule: "atomic-ordering",
                path: path.to_owned(),
                line: tok.line,
                snippet: snippet(source, tok.line),
                message: format!(
                    "`Ordering::Relaxed` on `.{}(..)` without an `// ORDERING:` \
                     comment within the {COMMENT_WINDOW} lines above — argue why \
                     no happens-before edge is needed (or which fence provides it)",
                    tok.text
                ),
                severity: Severity::Error,
                chain: Vec::new(),
            });
        }
    }
}

/// Callees whose closure argument re-executes on every retry, so the
/// closure must be side-effect-free.
const RETRY_COMBINATORS: [&str; 3] = ["read_consistent", "read_tracked", "read_with_retry"];

/// Method names that mutate their receiver: atomic writers/RMWs plus
/// the common collection mutators. Receiver-based detection — a call
/// on a *local* binding of the retry body is fine (its effects are
/// discarded with the binding on the next retry).
const MUTATING_METHODS: [&str; 22] = [
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "push",
    "push_str",
    "insert",
    "remove",
    "clear",
    "extend",
    "pop",
    "truncate",
    "set",
];

/// I/O-shaped macros: a retried body re-emits them arbitrarily often.
const IO_MACROS: [&str; 7] = [
    "println", "eprintln", "print", "eprint", "write", "writeln", "dbg",
];

/// C5 `retry-purity`: closures passed to a retry combinator
/// (`RETRY_COMBINATORS`) and the bodies of fns marked
/// `// RETRY-SAFE:` must be side-effect-free, because a validation
/// failure re-executes them arbitrarily many times and discards their
/// intermediate results. Three effect shapes are flagged:
///
/// * assignment (plain or compound) to a binding that is not local to
///   the retry body — a captured variable or a `&mut` parameter keeps
///   the effect across retries;
/// * a mutating method call (`MUTATING_METHODS`) whose receiver
///   chain is not rooted in a local binding (`.swap` only counts when
///   an `Ordering` appears in its arguments, mirroring C3);
/// * an I/O macro (`IO_MACROS`).
///
/// "Local" means: closure parameters, by-value fn parameters, and
/// `let` bindings inside the scanned range. `&mut` parameters of a
/// `// RETRY-SAFE:` fn are deliberately *not* local — writes through
/// them survive the retry.
pub fn check_retry_purity(
    path: &str,
    source: &str,
    toks: &[Tok],
    analysis: &crate::parser::FileAnalysis,
    out: &mut Vec<Violation>,
) {
    for f in &analysis.fns {
        if f.in_test {
            continue;
        }
        for call in &f.calls {
            if !RETRY_COMBINATORS.contains(&call.name.as_str()) {
                continue;
            }
            let Some((open, close)) = call.args_range else {
                continue;
            };
            for cl in &f.closures {
                if cl.body.0 <= open || cl.body.1 > close + 1 {
                    continue;
                }
                let mut locals: Vec<String> = cl.params.clone();
                let ctx = format!("closure passed to `{}`", call.name);
                scan_purity(path, source, toks, cl.body, &mut locals, &ctx, out);
            }
        }
        if f.retry_safe {
            if let Some((open, close)) = f.body {
                let mut locals: Vec<String> = f
                    .params
                    .iter()
                    .filter(|p| !p.by_mut_ref)
                    .map(|p| p.name.clone())
                    .collect();
                let ctx = format!("fn `{}` marked `// RETRY-SAFE:`", f.qual_name());
                scan_purity(
                    path,
                    source,
                    toks,
                    (open + 1, close),
                    &mut locals,
                    &ctx,
                    out,
                );
            }
        }
    }
}

/// Scans `[lo, hi)` for the three impure shapes. `locals` is seeded
/// with the body's parameters and extended with its `let` bindings.
fn scan_purity(
    path: &str,
    source: &str,
    toks: &[Tok],
    (lo, hi): (usize, usize),
    locals: &mut Vec<String>,
    ctx: &str,
    out: &mut Vec<Violation>,
) {
    let hi = hi.min(toks.len());
    // Pass 1: every `let`-bound (and nested-closure-bound) name is
    // local to the retry body.
    let mut i = lo;
    while i < hi {
        if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
            let mut j = i + 1;
            while j < hi
                && !(toks[j].kind == TokKind::Punct && matches!(toks[j].text.as_str(), "=" | ";"))
            {
                if toks[j].kind == TokKind::Ident
                    && !matches!(
                        toks[j].text.as_str(),
                        "Some" | "Ok" | "Err" | "None" | "mut" | "ref"
                    )
                {
                    locals.push(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    let impure = |line: usize, what: String| {
        Violation {
        rule: "retry-purity",
        path: path.to_owned(),
        line,
        snippet: snippet(source, line),
        message: format!("{what} inside a retried body ({ctx}) — the body re-executes on every validation failure, so its effects must be local"),
        severity: Severity::Error,
        chain: Vec::new(),
    }
    };
    // Pass 2: the effect scan.
    for i in lo..hi {
        let tok = &toks[i];
        if tok.kind == TokKind::Punct && tok.text == "=" {
            // A `let` earlier in the same statement makes this a
            // binding, not a mutation.
            let mut k = i;
            let mut is_let = false;
            while k > lo {
                k -= 1;
                match toks[k].text.as_str() {
                    ";" | "{" | "}" => break,
                    "let" if toks[k].kind == TokKind::Ident => {
                        is_let = true;
                        break;
                    }
                    _ => {}
                }
            }
            if is_let {
                continue;
            }
            // Step over a compound-assignment operator (`+=` lexes as
            // `+` `=`).
            let mut p = i.saturating_sub(1);
            if p > lo
                && toks[p].kind == TokKind::Punct
                && matches!(
                    toks[p].text.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "&" | "^" | "|"
                )
            {
                p -= 1;
            }
            if let Some(base) = place_base(toks, lo, p) {
                if !locals.contains(&base) {
                    out.push(impure(
                        tok.line,
                        format!("assignment to `{base}`, which is not local to the body"),
                    ));
                }
            }
            continue;
        }
        if tok.kind != TokKind::Ident {
            continue;
        }
        if IO_MACROS.contains(&tok.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == "!")
            && toks.get(i + 2).is_some_and(|t| t.text != "=")
        {
            out.push(impure(tok.line, format!("I/O macro `{}!`", tok.text)));
            continue;
        }
        let is_method =
            i > lo && toks[i - 1].text == "." && toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !is_method || !MUTATING_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        if tok.text == "swap" {
            // Only atomic swap counts (mirrors the C3 disambiguation).
            let close = matching_delim(toks, i + 1, "(", ")");
            let has_ordering = toks[i + 2..close.min(toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && ORDERING_NAMES.contains(&t.text.as_str()));
            if !has_ordering {
                continue;
            }
        }
        let base = place_base(toks, lo, i.saturating_sub(2));
        match base {
            Some(b) if locals.contains(&b) => {}
            Some(b) => out.push(impure(
                tok.line,
                format!(
                    "mutating call `.{}()` on `{b}`, which is not local to the body",
                    tok.text
                ),
            )),
            // Chained receiver (`x.field().push(..)`) — conservatively
            // impure: the chain root cannot be resolved.
            None => out.push(impure(
                tok.line,
                format!("mutating call `.{}()` on an unresolved receiver", tok.text),
            )),
        }
    }
}

/// Walks back from `k` (the last token of a place expression) to the
/// base identifier, stepping over `]`-delimited index groups and
/// `.`-joined field chains. `None` when the shape is not a simple
/// place (e.g. rooted in a call result).
fn place_base(toks: &[Tok], lo: usize, mut k: usize) -> Option<String> {
    loop {
        if k < lo || k >= toks.len() {
            return None;
        }
        if toks[k].text == "]" {
            let mut depth = 0isize;
            while k > lo {
                if toks[k].text == "]" {
                    depth += 1;
                } else if toks[k].text == "[" {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == lo {
                return None;
            }
            k -= 1;
            continue;
        }
        if toks[k].kind == TokKind::Ident {
            if k >= lo + 2 && toks[k - 1].text == "." && toks[k - 2].kind != TokKind::Punct {
                k -= 2;
                continue;
            }
            if k >= 1 && toks[k - 1].text == "." {
                // `.field` rooted in a non-ident (call result, `)`).
                return None;
            }
            return Some(toks[k].text.clone());
        }
        return None;
    }
}
