//! CLI entry point: `cargo xtask audit [--fix-report <path>] [--root
//! <path>] [--warnings] [--enforce-runtime]` and `cargo xtask markers
//! [--check] [--root <path>]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

/// Committed snapshot of the marker index, kept current by
/// `cargo xtask markers > audit-markers.txt` and enforced by the CI
/// `markers --check` lane.
const MARKERS_FILE: &str = "audit-markers.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("markers") => markers(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask audit [--fix-report <path>] [--root <path>] [--warnings]\n\
         \x20                       [--enforce-runtime]\n\
         \x20      cargo xtask markers [--check] [--root <path>]\n\
         \n\
         audit: checks the workspace against the invariant rules described in\n\
         DESIGN.md §\"Invariants & static analysis\" and §13 (dataflow rules).\n\
         \n\
         options:\n\
           --fix-report <path>  also write a machine-readable JSON report (schema v4,\n\
                                including per-rule wall times and the lock graph)\n\
           --root <path>        workspace root (default: walk up from cwd)\n\
           --warnings           print heuristic warnings (never fail the audit)\n\
           --enforce-runtime    fail if the audit takes more than 2x the baseline\n\
                                committed in `audit-baseline.txt`\n\
         \n\
         markers: prints the INVARIANT / HOT-PATH / UNSAFE / CFG / LOCKGRAPH marker\n\
         index; with --check, diffs it against the committed `audit-markers.txt`\n\
         snapshot and fails on drift (regenerate with\n\
         `cargo xtask markers > audit-markers.txt`)."
    );
}

/// Renders the marker index in the committed snapshot format.
fn render_markers(report: &xtask::report::AuditReport) -> String {
    use std::fmt::Write as _;
    let mut lines = Vec::new();
    for m in &report.invariants {
        lines.push(format!("INVARIANT {}:{} {}", m.path, m.line, m.text));
    }
    for m in &report.hot_paths {
        lines.push(format!(
            "HOT-PATH {}:{} [{}] {}",
            m.path,
            m.line,
            m.attached_fn.as_deref().unwrap_or("-"),
            m.text
        ));
    }
    for s in &report.unsafe_sites {
        lines.push(format!(
            "UNSAFE {}:{} [{}] {}",
            s.path,
            s.line,
            s.kind.label(),
            s.snippet
        ));
    }
    for c in &report.cfg_fns {
        lines.push(format!(
            "CFG {}:{} [{}] blocks={} guards={}",
            c.path, c.line, c.fn_name, c.blocks, c.guards
        ));
    }
    for s in &report.lock_sites {
        lines.push(format!(
            "LOCKGRAPH-SITE {}:{} [{}] class={} {}",
            s.path, s.line, s.fn_qual, s.class, s.desc
        ));
    }
    for e in &report.lock_edges {
        lines.push(format!(
            "LOCKGRAPH-EDGE {} -> {} ({}:{})",
            e.from, e.to, e.path, e.line
        ));
    }
    lines.sort();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Marker index — regenerate with `cargo xtask markers > {MARKERS_FILE}`."
    );
    let _ = writeln!(
        out,
        "# CI fails if this snapshot drifts from the source markers, so every"
    );
    let _ = writeln!(
        out,
        "# added/moved/removed INVARIANT or HOT-PATH marker, every new UNSAFE"
    );
    let _ = writeln!(
        out,
        "# site in library code, and every change to the OLC dataflow surface"
    );
    let _ = writeln!(
        out,
        "# (CFG lines) or the lock-acquisition graph (LOCKGRAPH lines) is"
    );
    let _ = writeln!(out, "# reviewed here.");
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

fn markers(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = match xtask::workspace::find_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = render_markers(&report);
    if !check {
        print!("{rendered}");
        return ExitCode::SUCCESS;
    }
    let snapshot_path = root.join(MARKERS_FILE);
    let committed = std::fs::read_to_string(&snapshot_path).unwrap_or_default();
    if committed == rendered {
        println!(
            "markers: snapshot up to date ({} invariant, {} hot-path, {} unsafe, \
             {} cfg, {} lock-site, {} lock-edge)",
            report.invariants.len(),
            report.hot_paths.len(),
            report.unsafe_sites.len(),
            report.cfg_fns.len(),
            report.lock_sites.len(),
            report.lock_edges.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("markers: `{MARKERS_FILE}` is stale — marker index drifted:");
    let committed_lines: std::collections::BTreeSet<&str> = committed.lines().collect();
    let current_lines: std::collections::BTreeSet<&str> = rendered.lines().collect();
    for gone in committed_lines.difference(&current_lines) {
        eprintln!("  - {gone}");
    }
    for added in current_lines.difference(&committed_lines) {
        eprintln!("  + {added}");
    }
    eprintln!("regenerate with: cargo xtask markers > {MARKERS_FILE}");
    ExitCode::FAILURE
}

/// Reads the committed audit-runtime baseline: the first line of
/// `audit-baseline.txt` that is neither blank nor a `#` comment,
/// parsed as milliseconds.
fn read_baseline_ms(root: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(root.join(xtask::BASELINE_FILE)).ok()?;
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse::<f64>().ok())
}

fn audit(args: &[String]) -> ExitCode {
    let mut fix_report: Option<String> = None;
    let mut root_arg: Option<String> = None;
    let mut show_warnings = false;
    let mut enforce_runtime = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix-report" => match it.next() {
                Some(p) => fix_report = Some(p.clone()),
                None => {
                    eprintln!("--fix-report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--warnings" => show_warnings = true,
            "--enforce-runtime" => enforce_runtime = true,
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let root = match xtask::workspace::find_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text(show_warnings));
    if let Some(path) = fix_report {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    if enforce_runtime {
        match read_baseline_ms(&root) {
            Some(baseline) if report.total_ms > 2.0 * baseline => {
                eprintln!(
                    "audit-runtime: {:.0} ms exceeds 2x the committed baseline of \
                     {baseline:.0} ms ({}) — the auditor regressed; profile the new \
                     rule or refresh the baseline with a justification",
                    report.total_ms,
                    xtask::BASELINE_FILE
                );
                return ExitCode::FAILURE;
            }
            Some(baseline) => {
                eprintln!(
                    "audit-runtime: {:.0} ms within 2x baseline ({baseline:.0} ms)",
                    report.total_ms
                );
            }
            None => {
                eprintln!(
                    "audit-runtime: no parsable baseline in {} — commit one to enforce",
                    xtask::BASELINE_FILE
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
