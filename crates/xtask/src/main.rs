//! CLI entry point: `cargo xtask audit [--fix-report <path>] [--root
//! <path>] [--warnings]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask audit [--fix-report <path>] [--root <path>] [--warnings]\n\
         \n\
         Audits the workspace against the invariant rules described in\n\
         DESIGN.md §\"Invariants & static analysis\".\n\
         \n\
         options:\n\
           --fix-report <path>  also write a machine-readable JSON report\n\
           --root <path>        workspace root (default: walk up from cwd)\n\
           --warnings           print heuristic warnings (never fail the audit)"
    );
}

fn audit(args: &[String]) -> ExitCode {
    let mut fix_report: Option<String> = None;
    let mut root_arg: Option<String> = None;
    let mut show_warnings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix-report" => match it.next() {
                Some(p) => fix_report = Some(p.clone()),
                None => {
                    eprintln!("--fix-report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--warnings" => show_warnings = true,
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let root = match xtask::workspace::find_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text(show_warnings));
    if let Some(path) = fix_report {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
