//! CLI entry point: `cargo xtask audit [--fix-report <path>] [--root
//! <path>] [--warnings]` and `cargo xtask markers [--check] [--root
//! <path>]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

/// Committed snapshot of the marker index, kept current by
/// `cargo xtask markers > audit-markers.txt` and enforced by the CI
/// `markers --check` lane.
const MARKERS_FILE: &str = "audit-markers.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some("markers") => markers(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask audit [--fix-report <path>] [--root <path>] [--warnings]\n\
         \x20      cargo xtask markers [--check] [--root <path>]\n\
         \n\
         audit: checks the workspace against the invariant rules described in\n\
         DESIGN.md §\"Invariants & static analysis\".\n\
         \n\
         options:\n\
           --fix-report <path>  also write a machine-readable JSON report (schema v3)\n\
           --root <path>        workspace root (default: walk up from cwd)\n\
           --warnings           print heuristic warnings (never fail the audit)\n\
         \n\
         markers: prints the INVARIANT / HOT-PATH / UNSAFE marker index; with --check,\n\
         diffs it against the committed `audit-markers.txt` snapshot and fails\n\
         on drift (regenerate with `cargo xtask markers > audit-markers.txt`)."
    );
}

/// Renders the marker index in the committed snapshot format.
fn render_markers(report: &xtask::report::AuditReport) -> String {
    use std::fmt::Write as _;
    let mut lines = Vec::new();
    for m in &report.invariants {
        lines.push(format!("INVARIANT {}:{} {}", m.path, m.line, m.text));
    }
    for m in &report.hot_paths {
        lines.push(format!(
            "HOT-PATH {}:{} [{}] {}",
            m.path,
            m.line,
            m.attached_fn.as_deref().unwrap_or("-"),
            m.text
        ));
    }
    for s in &report.unsafe_sites {
        lines.push(format!(
            "UNSAFE {}:{} [{}] {}",
            s.path,
            s.line,
            s.kind.label(),
            s.snippet
        ));
    }
    lines.sort();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Marker index — regenerate with `cargo xtask markers > {MARKERS_FILE}`."
    );
    let _ = writeln!(
        out,
        "# CI fails if this snapshot drifts from the source markers, so every"
    );
    let _ = writeln!(
        out,
        "# added/moved/removed INVARIANT or HOT-PATH marker — and every new"
    );
    let _ = writeln!(out, "# UNSAFE site in library code — is reviewed here.");
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

fn markers(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = match xtask::workspace::find_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = render_markers(&report);
    if !check {
        print!("{rendered}");
        return ExitCode::SUCCESS;
    }
    let snapshot_path = root.join(MARKERS_FILE);
    let committed = std::fs::read_to_string(&snapshot_path).unwrap_or_default();
    if committed == rendered {
        println!(
            "markers: snapshot up to date ({} invariant, {} hot-path, {} unsafe)",
            report.invariants.len(),
            report.hot_paths.len(),
            report.unsafe_sites.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("markers: `{MARKERS_FILE}` is stale — marker index drifted:");
    let committed_lines: std::collections::BTreeSet<&str> = committed.lines().collect();
    let current_lines: std::collections::BTreeSet<&str> = rendered.lines().collect();
    for gone in committed_lines.difference(&current_lines) {
        eprintln!("  - {gone}");
    }
    for added in current_lines.difference(&committed_lines) {
        eprintln!("  + {added}");
    }
    eprintln!("regenerate with: cargo xtask markers > {MARKERS_FILE}");
    ExitCode::FAILURE
}

fn audit(args: &[String]) -> ExitCode {
    let mut fix_report: Option<String> = None;
    let mut root_arg: Option<String> = None;
    let mut show_warnings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix-report" => match it.next() {
                Some(p) => fix_report = Some(p.clone()),
                None => {
                    eprintln!("--fix-report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--warnings" => show_warnings = true,
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let root = match xtask::workspace::find_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text(show_warnings));
    if let Some(path) = fix_report {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
