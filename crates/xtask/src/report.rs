//! Human and machine-readable audit reports.

use crate::allowlist::AllowEntry;
use crate::callgraph::CallGraphStats;
use crate::parser::{HotPathMarker, UnsafeSite};
use crate::rules::{InvariantMarker, Violation};

/// JSON report schema version. v2 added `hot_paths`, `callgraph`, and
/// per-violation `chain` arrays; v3 added `unsafe_sites` (the workspace
/// unsafe inventory behind the `unsafe-safety-comment` rule).
pub const SCHEMA_VERSION: u32 = 3;

/// Complete result of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Violations not covered by the allowlist (audit fails if any
    /// error-severity entries exist).
    pub active: Vec<Violation>,
    /// Violations suppressed by an allowlist entry (entry index).
    pub suppressed: Vec<(Violation, usize)>,
    /// Allowlist entries, as parsed.
    pub allowlist: Vec<AllowEntry>,
    /// Indexes of allowlist entries that matched nothing.
    pub unused_allowlist: Vec<usize>,
    /// Every `// INVARIANT:` marker in the workspace.
    pub invariants: Vec<InvariantMarker>,
    /// Every non-test `unsafe` site in the workspace (the inventory is
    /// empty while the crates keep `#![forbid(unsafe_code)]`; any
    /// future site appears here and in `audit-markers.txt`).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Every `// HOT-PATH:` marker in the workspace.
    pub hot_paths: Vec<HotPathMarker>,
    /// Call-graph summary counts.
    pub callgraph: CallGraphStats,
    /// Files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// `true` when the audit should fail the build.
    pub fn failed(&self) -> bool {
        use crate::rules::Severity;
        self.active.iter().any(|v| v.severity == Severity::Error)
            || !self.unused_allowlist.is_empty()
    }

    /// Counts of (errors, warnings) among active violations.
    pub fn counts(&self) -> (usize, usize) {
        use crate::rules::Severity;
        let errors = self
            .active
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count();
        (errors, self.active.len() - errors)
    }

    /// Renders the human-readable report.
    pub fn render_text(&self, show_warnings: bool) -> String {
        use crate::rules::Severity;
        use std::fmt::Write as _;
        let mut out = String::new();
        let (errors, warnings) = self.counts();
        for v in &self.active {
            if v.severity == Severity::Warning && !show_warnings {
                continue;
            }
            let tag = match v.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = writeln!(
                out,
                "{tag}[{}]: {}\n  --> {}:{}\n   | {}",
                v.rule, v.message, v.path, v.line, v.snippet
            );
            if !v.chain.is_empty() {
                let _ = writeln!(out, "   = via {}", v.chain.join(" -> "));
            }
            let _ = writeln!(out);
        }
        for &i in &self.unused_allowlist {
            let e = &self.allowlist[i];
            let _ = writeln!(
                out,
                "error[stale-allowlist]: entry at allowlist line {} (`{} | {} | {}`) matched \
                 nothing — remove it\n",
                e.line, e.rule, e.path_suffix, e.fragment
            );
        }
        let _ = writeln!(
            out,
            "audit: {} file(s) scanned, {} fn(s) / {} call edge(s) in graph, {} error(s), \
             {} warning(s), {} allowlisted, {} invariant + {} hot-path marker(s) indexed, \
             {} unsafe site(s) inventoried",
            self.files_scanned,
            self.callgraph.functions,
            self.callgraph.edges,
            errors,
            warnings,
            self.suppressed.len(),
            self.invariants.len(),
            self.hot_paths.len(),
            self.unsafe_sites.len()
        );
        out
    }

    /// Renders the machine-readable JSON report for `--fix-report`.
    pub fn render_json(&self) -> String {
        use crate::rules::Severity;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {SCHEMA_VERSION},\n  \"files_scanned\": {},\n  \"failed\": {},\n",
            self.files_scanned,
            self.failed()
        ));
        out.push_str(&format!(
            "  \"callgraph\": {{\"functions\": {}, \"edges\": {}, \"hot_roots\": {}, \
             \"pub_roots\": {}}},\n",
            self.callgraph.functions,
            self.callgraph.edges,
            self.callgraph.hot_roots,
            self.callgraph.pub_roots
        ));
        out.push_str("  \"violations\": [\n");
        let items: Vec<String> = self
            .active
            .iter()
            .map(|v| {
                let chain: Vec<String> = v.chain.iter().map(|c| json_str(c)).collect();
                format!(
                    "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
                     \"snippet\": {}, \"message\": {}, \"chain\": [{}]}}",
                    json_str(v.rule),
                    json_str(match v.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    }),
                    json_str(&v.path),
                    v.line,
                    json_str(&v.snippet),
                    json_str(&v.message),
                    chain.join(", ")
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"allowlisted\": [\n");
        let items: Vec<String> = self
            .suppressed
            .iter()
            .map(|(v, idx)| {
                format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                    json_str(v.rule),
                    json_str(&v.path),
                    v.line,
                    json_str(&self.allowlist[*idx].reason)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"invariants\": [\n");
        let items: Vec<String> = self
            .invariants
            .iter()
            .map(|m| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"text\": {}}}",
                    json_str(&m.path),
                    m.line,
                    json_str(&m.text)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"unsafe_sites\": [\n");
        let items: Vec<String> = self
            .unsafe_sites
            .iter()
            .map(|s| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"kind\": {}, \"snippet\": {}}}",
                    json_str(&s.path),
                    s.line,
                    json_str(s.kind.label()),
                    json_str(&s.snippet)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"hot_paths\": [\n");
        let items: Vec<String> = self
            .hot_paths
            .iter()
            .map(|m| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"text\": {}, \"attached_fn\": {}}}",
                    json_str(&m.path),
                    m.line,
                    json_str(&m.text),
                    m.attached_fn.as_deref().map_or("null".to_owned(), json_str)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (no external serializer available in
/// the offline build).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn failed_iff_errors_or_stale_entries() {
        let mut report = AuditReport {
            active: Vec::new(),
            suppressed: Vec::new(),
            allowlist: Vec::new(),
            unused_allowlist: Vec::new(),
            invariants: Vec::new(),
            unsafe_sites: Vec::new(),
            hot_paths: Vec::new(),
            callgraph: CallGraphStats::default(),
            files_scanned: 0,
        };
        assert!(!report.failed());
        report.active.push(Violation {
            rule: "indexing",
            path: "x.rs".into(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            severity: Severity::Warning,
            chain: Vec::new(),
        });
        assert!(!report.failed(), "warnings alone must not fail the audit");
        report.active.push(Violation {
            rule: "panic-free",
            path: "x.rs".into(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            severity: Severity::Error,
            chain: Vec::new(),
        });
        assert!(report.failed());
    }

    #[test]
    fn json_is_structurally_sound() {
        let report = AuditReport {
            active: vec![Violation {
                rule: "float-eq",
                path: "a.rs".into(),
                line: 3,
                snippet: "x == 0.0".into(),
                message: "msg".into(),
                severity: Severity::Error,
                chain: vec!["root".into(), "site".into()],
            }],
            suppressed: Vec::new(),
            allowlist: Vec::new(),
            unused_allowlist: Vec::new(),
            invariants: Vec::new(),
            unsafe_sites: vec![crate::parser::UnsafeSite {
                path: "crates/rtree/src/olc.rs".into(),
                line: 9,
                kind: crate::parser::UnsafeKind::Block,
                snippet: "unsafe { ptr.read() }".into(),
                in_test: false,
            }],
            hot_paths: Vec::new(),
            callgraph: CallGraphStats::default(),
            files_scanned: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"float-eq\""));
        assert!(json.contains("\"unsafe_sites\""));
        assert!(json.contains("\"kind\": \"block\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
