//! Human and machine-readable audit reports.

use crate::allowlist::AllowEntry;
use crate::callgraph::{CallGraphStats, LockEdge, LockSite};
use crate::dataflow::CfgFnSummary;
use crate::parser::{HotPathMarker, UnsafeSite};
use crate::rules::{InvariantMarker, Violation};

/// JSON report schema version. v2 added `hot_paths`, `callgraph`, and
/// per-violation `chain` arrays; v3 added `unsafe_sites` (the workspace
/// unsafe inventory behind the `unsafe-safety-comment` rule); v4 added
/// `cfg_fns` (per-function CFG summaries from the dataflow rules),
/// `lock_graph` (acquisition sites and held-then-acquire edges), and
/// `rule_timings_ms`/`total_ms` (per-rule wall time).
pub const SCHEMA_VERSION: u32 = 4;

/// Complete result of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Violations not covered by the allowlist (audit fails if any
    /// error-severity entries exist).
    pub active: Vec<Violation>,
    /// Violations suppressed by an allowlist entry (entry index).
    pub suppressed: Vec<(Violation, usize)>,
    /// Allowlist entries, as parsed.
    pub allowlist: Vec<AllowEntry>,
    /// Indexes of allowlist entries that matched nothing.
    pub unused_allowlist: Vec<usize>,
    /// Every `// INVARIANT:` marker in the workspace.
    pub invariants: Vec<InvariantMarker>,
    /// Every non-test `unsafe` site in the workspace (the inventory is
    /// empty while the crates keep `#![forbid(unsafe_code)]`; any
    /// future site appears here and in `audit-markers.txt`).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Every `// HOT-PATH:` marker in the workspace.
    pub hot_paths: Vec<HotPathMarker>,
    /// Call-graph summary counts.
    pub callgraph: CallGraphStats,
    /// Per-function CFG summaries from the `olc-use-before-validate`
    /// dataflow pass (one per analyzed fn).
    pub cfg_fns: Vec<CfgFnSummary>,
    /// Lock-acquisition sites in the lock-order graph.
    pub lock_sites: Vec<LockSite>,
    /// Held-then-acquire edges between lock classes.
    pub lock_edges: Vec<LockEdge>,
    /// Per-rule wall time in milliseconds, summed across files and
    /// workers, sorted by rule name.
    pub rule_timings_ms: Vec<(String, f64)>,
    /// Total audit wall time in milliseconds.
    pub total_ms: f64,
    /// Files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// `true` when the audit should fail the build.
    pub fn failed(&self) -> bool {
        use crate::rules::Severity;
        self.active.iter().any(|v| v.severity == Severity::Error)
            || !self.unused_allowlist.is_empty()
    }

    /// Counts of (errors, warnings) among active violations.
    pub fn counts(&self) -> (usize, usize) {
        use crate::rules::Severity;
        let errors = self
            .active
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count();
        (errors, self.active.len() - errors)
    }

    /// Renders the human-readable report.
    pub fn render_text(&self, show_warnings: bool) -> String {
        use crate::rules::Severity;
        use std::fmt::Write as _;
        let mut out = String::new();
        let (errors, warnings) = self.counts();
        for v in &self.active {
            if v.severity == Severity::Warning && !show_warnings {
                continue;
            }
            let tag = match v.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = writeln!(
                out,
                "{tag}[{}]: {}\n  --> {}:{}\n   | {}",
                v.rule, v.message, v.path, v.line, v.snippet
            );
            if !v.chain.is_empty() {
                let _ = writeln!(out, "   = via {}", v.chain.join(" -> "));
            }
            let _ = writeln!(out);
        }
        for &i in &self.unused_allowlist {
            let e = &self.allowlist[i];
            let _ = writeln!(
                out,
                "error[stale-allowlist]: entry at allowlist line {} (`{} | {} | {}`) matched \
                 nothing — remove it\n",
                e.line, e.rule, e.path_suffix, e.fragment
            );
        }
        let _ = writeln!(
            out,
            "audit: {} file(s) scanned, {} fn(s) / {} call edge(s) in graph, {} error(s), \
             {} warning(s), {} allowlisted, {} invariant + {} hot-path marker(s) indexed, \
             {} unsafe site(s) inventoried, {} cfg fn(s) analyzed, {} lock site(s) / \
             {} lock edge(s), {:.1} ms",
            self.files_scanned,
            self.callgraph.functions,
            self.callgraph.edges,
            errors,
            warnings,
            self.suppressed.len(),
            self.invariants.len(),
            self.hot_paths.len(),
            self.unsafe_sites.len(),
            self.cfg_fns.len(),
            self.lock_sites.len(),
            self.lock_edges.len(),
            self.total_ms
        );
        out
    }

    /// Renders the machine-readable JSON report for `--fix-report`.
    pub fn render_json(&self) -> String {
        use crate::rules::Severity;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {SCHEMA_VERSION},\n  \"files_scanned\": {},\n  \"failed\": {},\n",
            self.files_scanned,
            self.failed()
        ));
        out.push_str(&format!(
            "  \"callgraph\": {{\"functions\": {}, \"edges\": {}, \"hot_roots\": {}, \
             \"pub_roots\": {}, \"lock_sites\": {}, \"lock_edges\": {}}},\n",
            self.callgraph.functions,
            self.callgraph.edges,
            self.callgraph.hot_roots,
            self.callgraph.pub_roots,
            self.callgraph.lock_sites,
            self.callgraph.lock_edges
        ));
        out.push_str(&format!("  \"total_ms\": {:.3},\n", self.total_ms));
        out.push_str("  \"rule_timings_ms\": {");
        let items: Vec<String> = self
            .rule_timings_ms
            .iter()
            .map(|(rule, ms)| format!("{}: {ms:.3}", json_str(rule)))
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("},\n  \"cfg_fns\": [\n");
        let items: Vec<String> = self
            .cfg_fns
            .iter()
            .map(|c| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"fn\": {}, \"blocks\": {}, \
                     \"guards\": {}}}",
                    json_str(&c.path),
                    c.line,
                    json_str(&c.fn_name),
                    c.blocks,
                    c.guards
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"lock_graph\": {\n    \"sites\": [\n");
        let items: Vec<String> = self
            .lock_sites
            .iter()
            .map(|s| {
                format!(
                    "      {{\"class\": {}, \"desc\": {}, \"path\": {}, \"line\": {}, \
                     \"fn\": {}}}",
                    json_str(&s.class),
                    json_str(&s.desc),
                    json_str(&s.path),
                    s.line,
                    json_str(&s.fn_qual)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n    ],\n    \"edges\": [\n");
        let items: Vec<String> = self
            .lock_edges
            .iter()
            .map(|e| {
                format!(
                    "      {{\"from\": {}, \"to\": {}, \"path\": {}, \"line\": {}, \
                     \"witness\": {}}}",
                    json_str(&e.from),
                    json_str(&e.to),
                    json_str(&e.path),
                    e.line,
                    json_str(&e.witness)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n    ]\n  },\n");
        out.push_str("  \"violations\": [\n");
        let items: Vec<String> = self
            .active
            .iter()
            .map(|v| {
                let chain: Vec<String> = v.chain.iter().map(|c| json_str(c)).collect();
                format!(
                    "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
                     \"snippet\": {}, \"message\": {}, \"chain\": [{}]}}",
                    json_str(v.rule),
                    json_str(match v.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    }),
                    json_str(&v.path),
                    v.line,
                    json_str(&v.snippet),
                    json_str(&v.message),
                    chain.join(", ")
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"allowlisted\": [\n");
        let items: Vec<String> = self
            .suppressed
            .iter()
            .map(|(v, idx)| {
                format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                    json_str(v.rule),
                    json_str(&v.path),
                    v.line,
                    json_str(&self.allowlist[*idx].reason)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"invariants\": [\n");
        let items: Vec<String> = self
            .invariants
            .iter()
            .map(|m| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"text\": {}}}",
                    json_str(&m.path),
                    m.line,
                    json_str(&m.text)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"unsafe_sites\": [\n");
        let items: Vec<String> = self
            .unsafe_sites
            .iter()
            .map(|s| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"kind\": {}, \"snippet\": {}}}",
                    json_str(&s.path),
                    s.line,
                    json_str(s.kind.label()),
                    json_str(&s.snippet)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ],\n  \"hot_paths\": [\n");
        let items: Vec<String> = self
            .hot_paths
            .iter()
            .map(|m| {
                format!(
                    "    {{\"path\": {}, \"line\": {}, \"text\": {}, \"attached_fn\": {}}}",
                    json_str(&m.path),
                    m.line,
                    json_str(&m.text),
                    m.attached_fn.as_deref().map_or("null".to_owned(), json_str)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (no external serializer available in
/// the offline build).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn failed_iff_errors_or_stale_entries() {
        let mut report = AuditReport {
            active: Vec::new(),
            suppressed: Vec::new(),
            allowlist: Vec::new(),
            unused_allowlist: Vec::new(),
            invariants: Vec::new(),
            unsafe_sites: Vec::new(),
            hot_paths: Vec::new(),
            callgraph: CallGraphStats::default(),
            cfg_fns: Vec::new(),
            lock_sites: Vec::new(),
            lock_edges: Vec::new(),
            rule_timings_ms: Vec::new(),
            total_ms: 0.0,
            files_scanned: 0,
        };
        assert!(!report.failed());
        report.active.push(Violation {
            rule: "indexing",
            path: "x.rs".into(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            severity: Severity::Warning,
            chain: Vec::new(),
        });
        assert!(!report.failed(), "warnings alone must not fail the audit");
        report.active.push(Violation {
            rule: "panic-free",
            path: "x.rs".into(),
            line: 1,
            snippet: String::new(),
            message: String::new(),
            severity: Severity::Error,
            chain: Vec::new(),
        });
        assert!(report.failed());
    }

    #[test]
    fn json_is_structurally_sound() {
        let report = AuditReport {
            active: vec![Violation {
                rule: "float-eq",
                path: "a.rs".into(),
                line: 3,
                snippet: "x == 0.0".into(),
                message: "msg".into(),
                severity: Severity::Error,
                chain: vec!["root".into(), "site".into()],
            }],
            suppressed: Vec::new(),
            allowlist: Vec::new(),
            unused_allowlist: Vec::new(),
            invariants: Vec::new(),
            unsafe_sites: vec![crate::parser::UnsafeSite {
                path: "crates/rtree/src/olc.rs".into(),
                line: 9,
                kind: crate::parser::UnsafeKind::Block,
                snippet: "unsafe { ptr.read() }".into(),
                in_test: false,
            }],
            hot_paths: Vec::new(),
            callgraph: CallGraphStats::default(),
            cfg_fns: vec![CfgFnSummary {
                path: "crates/rtree/src/olc.rs".into(),
                line: 129,
                fn_name: "VersionCell::read_consistent".into(),
                blocks: 7,
                guards: 1,
            }],
            lock_sites: vec![LockSite {
                class: "inner".into(),
                desc: ".lock() on `inner`".into(),
                path: "crates/obs/src/registry.rs".into(),
                line: 43,
                fn_qual: "Registry::with".into(),
            }],
            lock_edges: vec![LockEdge {
                from: "a".into(),
                to: "b".into(),
                witness: "`f` acquires `a` then `b`".into(),
                path: "x.rs".into(),
                line: 2,
            }],
            rule_timings_ms: vec![("panic-free".into(), 1.25)],
            total_ms: 10.5,
            files_scanned: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"float-eq\""));
        assert!(json.contains("\"unsafe_sites\""));
        assert!(json.contains("\"kind\": \"block\""));
        assert!(json.contains("\"lock_graph\""));
        assert!(json.contains("\"cfg_fns\""));
        assert!(json.contains("\"rule_timings_ms\": {\"panic-free\": 1.250}"));
        assert!(json.contains("\"from\": \"a\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
