//! # xtask — the workspace invariant auditor
//!
//! The paper's filtering strategies (RR/OR/BF, §IV) are only correct if
//! every filter is *strictly conservative*: a pruned object must
//! provably have `Pr < θ`. The codebase encodes that contract — and the
//! panic/determinism hygiene the production pipeline depends on — in
//! conventions that a reviewer cannot re-verify on every diff. This
//! crate machine-checks them:
//!
//! | rule id             | what it enforces |
//! |---------------------|------------------|
//! | `panic-free`        | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code of `linalg`, `gaussian`, `rtree`, `core` outside `#[cfg(test)]` |
//! | `indexing`          | (warning) heuristic `expr[...]` detection in the same crates — prefer `.get()` |
//! | `unseeded-rng`      | no `thread_rng`/`from_entropy`/`OsRng` outside `crates/bench` |
//! | `float-eq`          | no `==`/`!=` against float literals outside tests/allowlist |
//! | `crate-root-attrs`  | every crate root has `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | `invariant-marker`  | conservative-lookup functions carry `// INVARIANT:` markers, indexed into the report |
//! | `stale-allowlist`   | allowlist entries that no longer match anything fail the audit |
//! | `hot-path-alloc`    | no allocation site transitively reachable from a `// HOT-PATH:` root (call graph) |
//! | `panic-reachability`| no panic-family site transitively reachable from a public entry point, unless the containing fn documents `# Panics` (call graph) |
//! | `lossy-cast`        | no `as` cast to a narrower integer type in `linalg`/`gaussian`/`core` |
//! | `error-docs`        | public `Result`-returning fns document `# Errors`; every `PrqError` variant is constructed outside tests |
//! | `unsafe-safety-comment` | every `unsafe` block/fn/impl/trait carries a `// SAFETY:` comment; the full inventory is snapshotted into `audit-markers.txt` |
//! | `send-sync-audit`   | manual `unsafe impl Send`/`Sync` is an error unless allowlisted with the audit argument |
//! | `atomic-ordering`   | atomic ops name an explicit `Ordering` at the call site, `Relaxed` carries an `// ORDERING:` comment, `static mut` is banned |
//! | `hot-path-lock`     | no blocking `Mutex`/`RwLock` acquisition transitively reachable from a `// HOT-PATH:` root (call graph) |
//!
//! Run locally with `cargo xtask audit`; see DESIGN.md §"Invariants &
//! static analysis" for the allowlist policy, the `// HOT-PATH:` marker
//! convention, and the call-graph resolution rules. `cargo xtask
//! markers` prints (or, with `--check`, verifies) the committed
//! marker-index snapshot `audit-markers.txt`.
//!
//! The build environment is offline (no `syn`), so the auditor uses its
//! own minimal lexer ([`lexer`]) and a hand-rolled item parser
//! ([`parser`]) feeding a name-resolved call graph ([`callgraph`]). The
//! trade-off is documented per rule; fixture self-tests under
//! `tests/fixtures/` pin the expected behavior of each rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod workspace;

use callgraph::{Analysis, Sources};
use parser::FileAnalysis;
use report::AuditReport;
use rules::{RuleSet, Violation};
use std::path::Path;

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "audit-allowlist.txt";

/// Audits a single file's source under the given rule set, appending
/// findings, and returns the parsed analysis so callers can feed the
/// workspace call graph. Used by both the workspace audit and the
/// fixture tests.
pub fn audit_source(
    rel_path: &str,
    source: &str,
    rule_set: RuleSet,
    is_crate_root: bool,
    check_invariants: bool,
    violations: &mut Vec<Violation>,
    invariants: &mut Vec<rules::InvariantMarker>,
) -> FileAnalysis {
    let toks = lexer::lex(source);
    let analysis = parser::parse_file(rel_path, source, &toks);
    rules::check_tokens(rel_path, source, &toks, rule_set, &analysis, violations);
    if rule_set.error_docs {
        rules::check_error_docs(rel_path, source, &analysis, violations);
    }
    if rule_set.unsafe_safety {
        rules::check_unsafe_safety(rel_path, source, &analysis, violations);
    }
    if rule_set.send_sync {
        rules::check_send_sync(rel_path, source, &analysis, violations);
    }
    if rule_set.atomic_ordering {
        rules::check_atomic_ordering(rel_path, source, &toks, violations);
    }
    if is_crate_root {
        rules::check_crate_root(rel_path, source, violations);
    }
    if check_invariants {
        rules::check_invariant_markers(rel_path, source, violations);
    }
    // Dogfooding exclusion: the auditor's own sources mention the marker
    // strings as rule data and must not pollute the index.
    if !rel_path.starts_with("crates/xtask") {
        rules::collect_invariants(rel_path, source, invariants);
    }
    analysis
}

/// Runs the call-graph rules over a set of parsed files, appending
/// findings and returning the merged analysis (for report stats and
/// the marker index). Split out so fixture tests can run the graph
/// rules over a single file.
pub fn run_graph_checks(
    files: &[(String, FileAnalysis)],
    sources: &Sources,
    violations: &mut Vec<Violation>,
) -> Analysis {
    let analysis = Analysis::build(files);
    analysis.check_hot_path_alloc(sources, violations);
    analysis.check_hot_path_lock(sources, violations);
    analysis.check_panic_reachability(sources, violations);
    analysis.check_error_variants_constructed(violations);
    analysis
}

/// Runs the full audit over the workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let files = workspace::rust_files(root).map_err(|e| format!("walking workspace: {e}"))?;
    let mut violations = Vec::new();
    let mut invariants = Vec::new();
    let mut unsafe_sites = Vec::new();
    let mut parsed = Vec::new();
    let mut sources = Sources::default();
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let analysis = audit_source(
            rel,
            &source,
            workspace::classify(rel),
            workspace::is_crate_root(rel),
            workspace::INVARIANT_FILES.contains(&rel.as_str()),
            &mut violations,
            &mut invariants,
        );
        // The unsafe inventory snapshots library code: test-region sites
        // are exempt from the SAFETY rule and excluded here too, and the
        // auditor's own sources are excluded like the other marker
        // indexes (dogfooding).
        if !rel.starts_with("crates/xtask") {
            unsafe_sites.extend(analysis.unsafe_sites.iter().filter(|s| !s.in_test).cloned());
        }
        sources.insert(rel, &source);
        parsed.push((rel.clone(), analysis));
    }
    let analysis = run_graph_checks(&parsed, &sources, &mut violations);

    let allowlist_path = root.join(ALLOWLIST_FILE);
    let allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {ALLOWLIST_FILE}: {e}"))?;
        allowlist::parse(&text).map_err(|errs| errs.join("\n"))?
    } else {
        Vec::new()
    };
    let (active, suppressed, unused_allowlist) = allowlist::apply(violations, &allowlist);

    Ok(AuditReport {
        active,
        suppressed,
        allowlist,
        unused_allowlist,
        invariants,
        unsafe_sites,
        hot_paths: analysis.hot_markers.clone(),
        callgraph: analysis.stats(),
        files_scanned: files.len(),
    })
}
