//! # xtask — the workspace invariant auditor
//!
//! The paper's filtering strategies (RR/OR/BF, §IV) are only correct if
//! every filter is *strictly conservative*: a pruned object must
//! provably have `Pr < θ`. The codebase encodes that contract — and the
//! panic/determinism hygiene the production pipeline depends on — in
//! conventions that a reviewer cannot re-verify on every diff. This
//! crate machine-checks them:
//!
//! | rule id             | what it enforces |
//! |---------------------|------------------|
//! | `panic-free`        | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code of `linalg`, `gaussian`, `rtree`, `core` outside `#[cfg(test)]` |
//! | `indexing`          | (warning) heuristic `expr[...]` detection in the same crates — prefer `.get()` |
//! | `unseeded-rng`      | no `thread_rng`/`from_entropy`/`OsRng` outside `crates/bench` |
//! | `float-eq`          | no `==`/`!=` against float literals outside tests/allowlist |
//! | `crate-root-attrs`  | every crate root has `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | `invariant-marker`  | conservative-lookup functions carry `// INVARIANT:` markers, indexed into the report |
//! | `stale-allowlist`   | allowlist entries that no longer match anything fail the audit |
//! | `hot-path-alloc`    | no allocation site transitively reachable from a `// HOT-PATH:` root (call graph) |
//! | `panic-reachability`| no panic-family site transitively reachable from a public entry point, unless the containing fn documents `# Panics` (call graph) |
//! | `lossy-cast`        | no `as` cast to a narrower integer type in `linalg`/`gaussian`/`core` |
//! | `error-docs`        | public `Result`-returning fns document `# Errors`; every `PrqError` variant is constructed outside tests |
//! | `unsafe-safety-comment` | every `unsafe` block/fn/impl/trait carries a `// SAFETY:` comment; the full inventory is snapshotted into `audit-markers.txt` |
//! | `send-sync-audit`   | manual `unsafe impl Send`/`Sync` is an error unless allowlisted with the audit argument |
//! | `atomic-ordering`   | atomic ops name an explicit `Ordering` at the call site, `Relaxed` carries an `// ORDERING:` comment, `static mut` is banned |
//! | `hot-path-lock`     | no blocking `Mutex`/`RwLock` acquisition transitively reachable from a `// HOT-PATH:` root (call graph) |
//! | `olc-use-before-validate` | every value derived under a `VersionCell::optimistic_read` guard is CFG-dominated by a `guard.validate()` before it escapes (returned, stored, or passed on) |
//! | `retry-purity`      | closures passed to retry combinators (`read_consistent`) and fns marked `// RETRY-SAFE:` are side-effect-free — re-execution must be unobservable |
//! | `lock-order`        | held-then-acquire edges between lock classes admit no cycle — deadlock freedom by a single global acquisition order (lock graph) |
//!
//! Run locally with `cargo xtask audit`; see DESIGN.md §"Invariants &
//! static analysis" and §13 (the dataflow rules) for the allowlist
//! policy, the `// HOT-PATH:`/`// RETRY-SAFE:` marker conventions, and
//! the call-graph resolution rules. `cargo xtask markers` prints (or,
//! with `--check`, verifies) the committed marker-index snapshot
//! `audit-markers.txt`.
//!
//! The build environment is offline (no `syn`), so the auditor uses its
//! own minimal lexer ([`lexer`]) and a hand-rolled item parser
//! ([`parser`]) feeding a name-resolved call graph ([`callgraph`]) and
//! a per-function control-flow graph ([`mod@cfg`]) with forward-dominance
//! dataflow ([`dataflow`]). The trade-off is documented per rule;
//! fixture self-tests under `tests/fixtures/` pin the expected behavior
//! of each rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod workspace;

use callgraph::{Analysis, Sources};
use parser::FileAnalysis;
use report::AuditReport;
use rules::{RuleSet, Violation};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "audit-allowlist.txt";

/// Name of the committed audit-runtime baseline file (first
/// non-comment line: full-audit wall time in milliseconds).
pub const BASELINE_FILE: &str = "audit-baseline.txt";

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Audits a single file's source under the given rule set, appending
/// findings, CFG summaries, and per-rule wall times, and returns the
/// parsed analysis so callers can feed the workspace call graph. Used
/// by both the workspace audit and the fixture tests.
#[allow(clippy::too_many_arguments)]
pub fn audit_source(
    rel_path: &str,
    source: &str,
    rule_set: RuleSet,
    is_crate_root: bool,
    check_invariants: bool,
    violations: &mut Vec<Violation>,
    invariants: &mut Vec<rules::InvariantMarker>,
    cfg_fns: &mut Vec<dataflow::CfgFnSummary>,
    timings: &mut Vec<(&'static str, f64)>,
) -> FileAnalysis {
    let t = Instant::now();
    let toks = lexer::lex(source);
    let analysis = parser::parse_file(rel_path, source, &toks);
    timings.push(("lex-parse", ms_since(t)));
    let t = Instant::now();
    rules::check_tokens(rel_path, source, &toks, rule_set, &analysis, violations);
    timings.push(("token-rules", ms_since(t)));
    if rule_set.error_docs {
        let t = Instant::now();
        rules::check_error_docs(rel_path, source, &analysis, violations);
        timings.push(("error-docs", ms_since(t)));
    }
    if rule_set.unsafe_safety {
        let t = Instant::now();
        rules::check_unsafe_safety(rel_path, source, &analysis, violations);
        timings.push(("unsafe-safety-comment", ms_since(t)));
    }
    if rule_set.send_sync {
        let t = Instant::now();
        rules::check_send_sync(rel_path, source, &analysis, violations);
        timings.push(("send-sync-audit", ms_since(t)));
    }
    if rule_set.atomic_ordering {
        let t = Instant::now();
        rules::check_atomic_ordering(rel_path, source, &toks, violations);
        timings.push(("atomic-ordering", ms_since(t)));
    }
    if rule_set.olc_protocol {
        let t = Instant::now();
        dataflow::check_olc_use_before_validate(
            rel_path, source, &toks, &analysis, violations, cfg_fns,
        );
        timings.push(("olc-use-before-validate", ms_since(t)));
    }
    if rule_set.retry_purity {
        let t = Instant::now();
        rules::check_retry_purity(rel_path, source, &toks, &analysis, violations);
        timings.push(("retry-purity", ms_since(t)));
    }
    if is_crate_root {
        rules::check_crate_root(rel_path, source, violations);
    }
    if check_invariants {
        rules::check_invariant_markers(rel_path, source, violations);
    }
    // Dogfooding exclusion: the auditor's own sources mention the marker
    // strings as rule data and must not pollute the index.
    if !rel_path.starts_with("crates/xtask") {
        rules::collect_invariants(rel_path, source, invariants);
    }
    analysis
}

/// Runs the call-graph rules over a set of parsed files, appending
/// findings and returning the merged analysis (for report stats and
/// the marker index). Split out so fixture tests can run the graph
/// rules over a single file.
pub fn run_graph_checks(
    files: &[(String, FileAnalysis)],
    sources: &Sources,
    violations: &mut Vec<Violation>,
    timings: &mut Vec<(&'static str, f64)>,
) -> Analysis {
    let t = Instant::now();
    let analysis = Analysis::build(files);
    timings.push(("graph-build", ms_since(t)));
    let t = Instant::now();
    analysis.check_hot_path_alloc(sources, violations);
    timings.push(("hot-path-alloc", ms_since(t)));
    let t = Instant::now();
    analysis.check_hot_path_lock(sources, violations);
    timings.push(("hot-path-lock", ms_since(t)));
    let t = Instant::now();
    analysis.check_panic_reachability(sources, violations);
    timings.push(("panic-reachability", ms_since(t)));
    let t = Instant::now();
    analysis.check_error_variants_constructed(violations);
    timings.push(("error-variants", ms_since(t)));
    let t = Instant::now();
    analysis.check_lock_order(sources, violations);
    timings.push(("lock-order", ms_since(t)));
    analysis
}

/// Per-file result produced by one audit worker.
struct Unit {
    violations: Vec<Violation>,
    invariants: Vec<rules::InvariantMarker>,
    unsafe_sites: Vec<parser::UnsafeSite>,
    cfg_fns: Vec<dataflow::CfgFnSummary>,
    timings: Vec<(&'static str, f64)>,
    source: String,
    analysis: FileAnalysis,
}

fn audit_one(root: &Path, rel: &str) -> Result<Unit, String> {
    let source =
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
    let mut unit = Unit {
        violations: Vec::new(),
        invariants: Vec::new(),
        unsafe_sites: Vec::new(),
        cfg_fns: Vec::new(),
        timings: Vec::new(),
        source: String::new(),
        analysis: FileAnalysis::default(),
    };
    let analysis = audit_source(
        rel,
        &source,
        workspace::classify(rel),
        workspace::is_crate_root(rel),
        workspace::INVARIANT_FILES.contains(&rel),
        &mut unit.violations,
        &mut unit.invariants,
        &mut unit.cfg_fns,
        &mut unit.timings,
    );
    // The unsafe inventory snapshots library code: test-region sites
    // are exempt from the SAFETY rule and excluded here too, and the
    // auditor's own sources are excluded like the other marker
    // indexes (dogfooding).
    if !rel.starts_with("crates/xtask") {
        unit.unsafe_sites
            .extend(analysis.unsafe_sites.iter().filter(|s| !s.in_test).cloned());
    }
    unit.source = source;
    unit.analysis = analysis;
    Ok(unit)
}

/// Runs the full audit over the workspace rooted at `root`. Files are
/// scanned in parallel (one unit of work per file, claimed off a
/// shared counter) and merged back in path order, so the report —
/// violations, marker indexes, timings — is byte-identical to a
/// sequential scan.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let clock = Instant::now();
    let files = workspace::rust_files(root).map_err(|e| format!("walking workspace: {e}"))?;
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
        .min(files.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut merged: Vec<(usize, Result<Unit, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        // ORDERING: Relaxed — the counter only hands out
                        // distinct indices (the RMW is atomic regardless
                        // of ordering); workers share no other state, and
                        // the scope join below publishes their results.
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= files.len() {
                            break;
                        }
                        local.push((idx, audit_one(root, &files[idx])));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(_) => all.push((usize::MAX, Err("audit worker panicked".to_owned()))),
            }
        }
        all
    });
    merged.sort_by_key(|(idx, _)| *idx);

    let mut violations = Vec::new();
    let mut invariants = Vec::new();
    let mut unsafe_sites = Vec::new();
    let mut cfg_fns = Vec::new();
    let mut rule_timings: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut parsed = Vec::new();
    let mut sources = Sources::default();
    for (idx, result) in merged {
        let unit = result?;
        violations.extend(unit.violations);
        invariants.extend(unit.invariants);
        unsafe_sites.extend(unit.unsafe_sites);
        cfg_fns.extend(unit.cfg_fns);
        for (name, ms) in unit.timings {
            *rule_timings.entry(name).or_insert(0.0) += ms;
        }
        sources.insert(&files[idx], &unit.source);
        parsed.push((files[idx].clone(), unit.analysis));
    }
    let mut graph_timings = Vec::new();
    let analysis = run_graph_checks(&parsed, &sources, &mut violations, &mut graph_timings);
    for (name, ms) in graph_timings {
        *rule_timings.entry(name).or_insert(0.0) += ms;
    }

    let allowlist_path = root.join(ALLOWLIST_FILE);
    let allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {ALLOWLIST_FILE}: {e}"))?;
        allowlist::parse(&text).map_err(|errs| errs.join("\n"))?
    } else {
        Vec::new()
    };
    let (active, suppressed, unused_allowlist) = allowlist::apply(violations, &allowlist);

    Ok(AuditReport {
        active,
        suppressed,
        allowlist,
        unused_allowlist,
        invariants,
        unsafe_sites,
        hot_paths: analysis.hot_markers.clone(),
        callgraph: analysis.stats(),
        cfg_fns,
        lock_sites: analysis.lock_sites.clone(),
        lock_edges: analysis.lock_edges.clone(),
        rule_timings_ms: rule_timings
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        total_ms: ms_since(clock),
        files_scanned: files.len(),
    })
}
