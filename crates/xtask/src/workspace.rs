//! Workspace file discovery and per-file rule selection.

use crate::rules::RuleSet;
use std::path::{Path, PathBuf};

/// Library crates whose `src/` trees must be panic-free (rule R1). The
/// paper's filtering pipeline lives here; a panic in these crates is a
/// production outage, not a test failure.
pub const PANIC_FREE_CRATES: [&str; 5] = [
    "crates/linalg",
    "crates/gaussian",
    "crates/rtree",
    "crates/core",
    "crates/obs",
];

/// Files containing conservative-lookup functions that rule R5 checks
/// for `// INVARIANT:` markers.
pub const INVARIANT_FILES: [&str; 3] = [
    "crates/core/src/ucatalog.rs",
    "crates/core/src/theta_region.rs",
    "crates/gaussian/src/cloud.rs",
];

/// Directory prefixes never scanned: build output, the auditor's own
/// bad-code fixtures, and version control.
const SKIP_PREFIXES: [&str; 3] = ["target", "crates/xtask/tests/fixtures", ".git"];

/// Recursively finds every `.rs` file under `root`, returning
/// workspace-relative paths (with `/` separators) in sorted order.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut found = Vec::new();
    walk(root, root, &mut found)?;
    found.sort();
    Ok(found)
}

fn walk(root: &Path, dir: &Path, found: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = relative(root, &path);
        if SKIP_PREFIXES
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            || rel.starts_with('.')
        {
            continue;
        }
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            walk(root, &path, found)?;
        } else if file_type.is_file() && rel.ends_with(".rs") {
            found.push(rel);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Is this file a crate root that rule R4 applies to?
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
        || (rel.starts_with("shims/") && rel.ends_with("/src/lib.rs"))
}

/// Is this file inside any test/bench/example target (exempt from the
/// library-code rules wholesale)?
fn is_test_target(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
}

/// Selects the rule families for one workspace-relative path.
pub fn classify(rel: &str) -> RuleSet {
    let mut rules = RuleSet::default();
    if is_test_target(rel) {
        // R2 still applies to tests: a test drawing from ambient entropy
        // is flaky by construction.
        rules.seeded_rng = !rel.starts_with("crates/bench");
        return rules;
    }
    let in_panic_free_crate = PANIC_FREE_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("{c}/src/")));
    rules.panic_free = in_panic_free_crate;
    rules.indexing = in_panic_free_crate;
    // R1b is an allowlisted *error* where indexing is pervasive and
    // every site must argue its bounds (the numeric kernel and the
    // tree), a warning elsewhere.
    rules.indexing_strict =
        rel.starts_with("crates/linalg/src/") || rel.starts_with("crates/rtree/src/");
    // R6 scope per DESIGN.md §8: the numeric crates, where a silent
    // truncation corrupts probabilities rather than crashing.
    rules.lossy_cast = rel.starts_with("crates/linalg/src/")
        || rel.starts_with("crates/gaussian/src/")
        || rel.starts_with("crates/core/src/");
    rules.error_docs = in_panic_free_crate;
    // Benches may use ad-hoc RNG; shims implement the RNG itself; the
    // auditor is excluded by dogfooding choice (its sources mention the
    // banned identifiers as rule data).
    rules.seeded_rng = !(rel.starts_with("crates/bench")
        || rel.starts_with("shims/")
        || rel.starts_with("crates/xtask"));
    // Float equality: all first-party library code (not shims, whose API
    // mirrors upstream crates; not the auditor).
    rules.float_eq = !(rel.starts_with("shims/") || rel.starts_with("crates/xtask"));
    // Concurrency rules C1/C2 apply everywhere outside tests: an
    // undocumented `unsafe` or a hand-rolled Send/Sync assertion is as
    // dangerous in a shim as in a library crate.
    rules.unsafe_safety = true;
    rules.send_sync = true;
    // C3 exempts shims: their atomic wrappers forward a caller-supplied
    // `Ordering` variable by design (the API mirrors upstream crates),
    // which the call-site-visibility check would flag on every method.
    rules.atomic_ordering = !rel.starts_with("shims/");
    // C4/C5: the OLC protocol dataflow rules apply to the panic-free
    // crates' library sources — anywhere a `VersionCell` guard or a
    // retried closure can appear.
    rules.olc_protocol = in_panic_free_crate;
    rules.retry_purity = in_panic_free_crate;
    rules
}

/// Returns the absolute path of the workspace root, either from
/// `--root` or by walking up from the current directory to the first
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_root(explicit: Option<&str>) -> Result<PathBuf, String> {
    if let Some(r) = explicit {
        return Ok(PathBuf::from(r));
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("could not locate workspace root (no Cargo.toml with [workspace])".into());
        }
    }
}
