//! Fixture self-tests: each file under `tests/fixtures/` violates
//! exactly one rule, and the auditor must report that violation and
//! nothing else. `clean.rs` exercises every exemption at once and must
//! come back empty.

use xtask::callgraph::Sources;
use xtask::rules::{InvariantMarker, RuleSet, Severity, Violation};

const ALL_RULES: RuleSet = RuleSet {
    panic_free: true,
    seeded_rng: true,
    float_eq: true,
    indexing: true,
    indexing_strict: false,
    lossy_cast: true,
    error_docs: true,
    unsafe_safety: true,
    send_sync: true,
    atomic_ordering: true,
    olc_protocol: true,
    retry_purity: true,
};

fn read_fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn audit_fixture(
    name: &str,
    as_crate_root: bool,
    check_invariants: bool,
) -> (Vec<Violation>, Vec<InvariantMarker>) {
    let source = read_fixture(name);
    let mut violations = Vec::new();
    let mut invariants = Vec::new();
    let mut cfg_fns = Vec::new();
    let mut timings = Vec::new();
    xtask::audit_source(
        name,
        &source,
        ALL_RULES,
        as_crate_root,
        check_invariants,
        &mut violations,
        &mut invariants,
        &mut cfg_fns,
        &mut timings,
    );
    (violations, invariants)
}

/// Audits a fixture as if it lived in `crates/core/src/` (a call-graph
/// crate), running the token rules under `rules` AND the three
/// call-graph rules over its single-file graph.
fn audit_fixture_graph(name: &str, rules: RuleSet) -> Vec<Violation> {
    let source = read_fixture(name);
    let rel = format!("crates/core/src/{name}");
    let mut violations = Vec::new();
    let mut invariants = Vec::new();
    let mut cfg_fns = Vec::new();
    let mut timings = Vec::new();
    let analysis = xtask::audit_source(
        &rel,
        &source,
        rules,
        false,
        false,
        &mut violations,
        &mut invariants,
        &mut cfg_fns,
        &mut timings,
    );
    let mut sources = Sources::default();
    sources.insert(&rel, &source);
    let files = vec![(rel, analysis)];
    xtask::run_graph_checks(&files, &sources, &mut violations, &mut timings);
    violations
}

/// Asserts the fixture produced exactly one violation of `rule`.
fn assert_single(violations: &[Violation], rule: &str, line: usize, severity: Severity) {
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one `{rule}` violation, got: {violations:#?}"
    );
    assert_eq!(violations[0].rule, rule);
    assert_eq!(violations[0].line, line, "wrong line: {violations:#?}");
    assert_eq!(violations[0].severity, severity);
}

#[test]
fn panic_free_flags_library_unwrap_but_not_test_unwrap() {
    let (violations, _) = audit_fixture("panic_free.rs", false, false);
    assert_single(&violations, "panic-free", 5, Severity::Error);
    assert!(violations[0].snippet.contains("unwrap"));
}

#[test]
fn panic_free_flags_panic_macro_but_not_string_literal() {
    let (violations, _) = audit_fixture("panic_macro.rs", false, false);
    assert_single(&violations, "panic-free", 6, Severity::Error);
}

#[test]
fn indexing_heuristic_warns_but_skips_full_range_slice() {
    let (violations, _) = audit_fixture("indexing.rs", false, false);
    assert_single(&violations, "indexing", 6, Severity::Warning);
}

#[test]
fn unseeded_rng_flags_thread_rng_but_not_seed_from_u64() {
    let (violations, _) = audit_fixture("unseeded_rng.rs", false, false);
    assert_single(&violations, "unseeded-rng", 5, Severity::Error);
    assert!(violations[0].snippet.contains("thread_rng"));
}

#[test]
fn float_eq_flags_literal_equality_but_not_tolerance_or_int() {
    let (violations, _) = audit_fixture("float_eq.rs", false, false);
    assert_single(&violations, "float-eq", 6, Severity::Error);
}

#[test]
fn crate_root_attrs_reports_each_missing_attribute() {
    let (violations, _) = audit_fixture("crate_root_attrs.rs", true, false);
    assert_single(&violations, "crate-root-attrs", 1, Severity::Error);
    assert!(violations[0].message.contains("missing_docs"));
}

#[test]
fn invariant_marker_required_on_lookup_functions() {
    let (violations, invariants) = audit_fixture("invariant_marker.rs", false, true);
    assert_single(&violations, "invariant-marker", 5, Severity::Error);
    assert!(violations[0].message.contains("lookup_reject"));
    // The annotated function's marker is still indexed.
    assert_eq!(invariants.len(), 1);
    assert!(invariants[0].text.contains("rounded toward rejection"));
}

#[test]
fn clean_fixture_passes_every_rule() {
    let (violations, invariants) = audit_fixture("clean.rs", true, true);
    assert!(
        violations.is_empty(),
        "clean fixture must produce no findings: {violations:#?}"
    );
    assert_eq!(invariants.len(), 1);
}

#[test]
fn hot_path_alloc_flags_transitive_allocation_with_chain() {
    let violations = audit_fixture_graph("hot_path_alloc.rs", RuleSet::default());
    assert_single(&violations, "hot-path-alloc", 18, Severity::Error);
    assert!(violations[0].snippet.contains("vec!"));
    // The diagnostic names the whole path from the hot root to the site.
    assert_eq!(violations[0].chain, ["descend", "scale", "<vec!>"]);
}

#[test]
fn panic_reachability_respects_panics_doc_section() {
    let violations = audit_fixture_graph("panic_reach.rs", RuleSet::default());
    assert_single(&violations, "panic-reachability", 13, Severity::Error);
    assert!(violations[0].snippet.contains("panic!"));
    assert_eq!(violations[0].chain, ["entry", "inner"]);
}

#[test]
fn lossy_cast_flags_int_narrowing_but_not_float_or_test_casts() {
    let (violations, _) = audit_fixture("lossy_cast.rs", false, false);
    assert_single(&violations, "lossy-cast", 5, Severity::Error);
    assert!(violations[0].snippet.contains("as u32"));
}

#[test]
fn error_docs_flags_missing_section_and_dead_variant() {
    let violations = audit_fixture_graph("error_docs.rs", ALL_RULES);
    assert_eq!(
        violations.len(),
        2,
        "expected the missing `# Errors` doc and the dead variant: {violations:#?}"
    );
    assert!(violations.iter().all(|v| v.rule == "error-docs"));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("undocumented") && v.message.contains("# Errors")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("PrqError::Imaginary") && v.message.contains("never")));
}

#[test]
fn unsafe_without_safety_comment_is_flagged_documented_and_test_sites_pass() {
    let (violations, _) = audit_fixture("unsafe_safety.rs", false, false);
    assert_single(&violations, "unsafe-safety-comment", 6, Severity::Error);
    assert!(violations[0].message.contains("// SAFETY:"));
}

#[test]
fn manual_send_sync_impl_is_flagged_even_with_a_safety_comment() {
    let (violations, _) = audit_fixture("send_sync.rs", false, false);
    assert_single(&violations, "send-sync-audit", 13, Severity::Error);
    assert!(violations[0].message.contains("Sync"));
    assert!(violations[0].message.contains("Racy"));
}

#[test]
fn relaxed_without_ordering_comment_is_flagged_commented_and_explicit_pass() {
    let (violations, _) = audit_fixture("atomic_ordering.rs", false, false);
    assert_single(&violations, "atomic-ordering", 8, Severity::Error);
    assert!(violations[0].message.contains("// ORDERING:"));
}

#[test]
fn forwarding_a_variable_ordering_is_flagged() {
    let (violations, _) = audit_fixture("atomic_forwarded.rs", false, false);
    assert_single(&violations, "atomic-ordering", 7, Severity::Error);
    assert!(violations[0].message.contains("no explicit `Ordering`"));
}

#[test]
fn static_mut_is_banned() {
    let (violations, _) = audit_fixture("static_mut.rs", false, false);
    assert_single(&violations, "atomic-ordering", 3, Severity::Error);
    assert!(violations[0].message.contains("static mut"));
}

#[test]
fn hot_path_lock_flags_transitive_acquisition_with_chain() {
    let violations = audit_fixture_graph("hot_path_lock.rs", RuleSet::default());
    assert_single(&violations, "hot-path-lock", 18, Severity::Error);
    assert!(violations[0].snippet.contains("lock"));
    assert_eq!(violations[0].chain, ["passes", "bump", "<.lock()>"]);
}

#[test]
fn unvalidated_guard_escape_is_flagged_with_named_witness() {
    let (violations, _) = audit_fixture("olc_use_before_validate.rs", false, false);
    assert_single(&violations, "olc-use-before-validate", 12, Severity::Error);
    assert!(
        violations[0].message.contains("without a dominating")
            && violations[0].message.contains("returned at line 12"),
        "{}",
        violations[0].message
    );
    // The witness chain names the guard snapshot, the tainted
    // derivation, and the unvalidated escape site, in program order.
    assert_eq!(violations[0].chain.len(), 3, "{violations:#?}");
    assert!(violations[0].chain[0].contains(":8"), "{violations:#?}");
    assert!(violations[0].chain[2].contains(":12"), "{violations:#?}");
    // The correct validate-then-return shape beside it stays clean
    // (assert_single already guarantees exactly one finding).
}

#[test]
fn retry_purity_flags_impure_closure_and_impure_retry_safe_fn() {
    let (violations, _) = audit_fixture("retry_purity.rs", false, false);
    assert_eq!(
        violations.len(),
        2,
        "expected the impure closure and the impure RETRY-SAFE fn: {violations:#?}"
    );
    assert!(violations.iter().all(|v| v.rule == "retry-purity"));
    assert!(
        violations.iter().any(|v| v.line == 9
            && v.message.contains("fetch_add")
            && v.message.contains("read_consistent")),
        "{violations:#?}"
    );
    assert!(
        violations.iter().any(|v| v.line == 18
            && v.message.contains("push")
            && v.message.contains("RETRY-SAFE")),
        "{violations:#?}"
    );
}

#[test]
fn lock_order_cycle_fixture_reports_the_full_cycle_chain() {
    let violations = audit_fixture_graph("lock_order.rs", RuleSet::default());
    assert_single(&violations, "lock-order", 7, Severity::Error);
    assert!(
        violations[0].message.contains("`a` -> `b` -> `c` -> `a`"),
        "{}",
        violations[0].message
    );
    // One witness per edge of the cycle; the last hop is the
    // interprocedural acquisition through `reacquire`.
    assert_eq!(violations[0].chain.len(), 3, "{violations:#?}");
    assert!(
        violations[0].chain[2].contains("reacquire"),
        "{violations:#?}"
    );
}

#[test]
fn consistent_lock_order_fixture_is_clean() {
    let violations = audit_fixture_graph("lock_order_clean.rs", RuleSet::default());
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn allowlist_suppresses_a_triaged_violation() {
    let (violations, _) = audit_fixture("float_eq.rs", false, false);
    let entries =
        xtask::allowlist::parse("float-eq | float_eq.rs | x == 0.25 | intentional boundary")
            .unwrap();
    let (active, suppressed, unused) = xtask::allowlist::apply(violations, &entries);
    assert!(active.is_empty());
    assert_eq!(suppressed.len(), 1);
    assert!(unused.is_empty());
}

/// The acceptance gate: the real workspace must audit clean — zero
/// unsuppressed errors, no stale allowlist entries — and the invariant
/// index must cover the conservative-lookup sites.
#[test]
fn workspace_audits_clean() {
    let root = xtask::workspace::find_root(None).expect("workspace root");
    let report = xtask::audit_workspace(&root).expect("audit runs");
    assert!(
        !report.failed(),
        "workspace audit failed:\n{}",
        report.render_text(false)
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let marked_files: std::collections::BTreeSet<&str> =
        report.invariants.iter().map(|m| m.path.as_str()).collect();
    assert!(
        marked_files.contains("crates/core/src/ucatalog.rs"),
        "ucatalog lookups must carry INVARIANT markers"
    );
    assert!(
        marked_files.contains("crates/core/src/theta_region.rs"),
        "theta_region exact radius must carry INVARIANT markers"
    );
    // The call graph is populated and the hot roots the design names
    // (rtree descent, strategy predicates, evaluator loops) are marked.
    assert!(
        report.callgraph.functions > 100,
        "call graph suspiciously small: {:?}",
        report.callgraph
    );
    assert!(report.callgraph.edges > report.callgraph.functions);
    assert!(
        report.callgraph.hot_roots >= 3,
        "expected the designated hot roots to be marked: {:?}",
        report.callgraph
    );
    let hot_files: std::collections::BTreeSet<&str> =
        report.hot_paths.iter().map(|m| m.path.as_str()).collect();
    assert!(
        hot_files.contains("crates/rtree/src/query.rs"),
        "rtree query descent must be a HOT-PATH root"
    );
    assert!(
        report.hot_paths.iter().all(|m| m.attached_fn.is_some()),
        "no dangling HOT-PATH markers"
    );
    // Every crate root carries `#![forbid(unsafe_code)]`, so the
    // concurrency audit's unsafe inventory must come back empty; the
    // first real site will show up here and in `audit-markers.txt`.
    assert!(
        report.unsafe_sites.is_empty(),
        "unexpected unsafe sites in library code: {:?}",
        report.unsafe_sites
    );
    // The OLC dataflow pass must cover the seqlock's own retry loop,
    // and the lock graph must index the observability registry's
    // mutex — with no ordering cycle anywhere in the workspace.
    assert!(
        report
            .cfg_fns
            .iter()
            .any(|c| c.path == "crates/rtree/src/olc.rs" && c.fn_name.contains("read_tracked")),
        "the seqlock retry loop (read_tracked) must be CFG-analyzed: {:?}",
        report.cfg_fns
    );
    assert!(
        report
            .lock_sites
            .iter()
            .any(|s| s.path == "crates/obs/src/registry.rs"),
        "the obs registry mutex must be in the lock graph: {:?}",
        report.lock_sites
    );
    // Per-rule timings are recorded for the --fix-report JSON; the new
    // rules must appear.
    let timed: std::collections::BTreeSet<&str> = report
        .rule_timings_ms
        .iter()
        .map(|(r, _)| r.as_str())
        .collect();
    for rule in ["olc-use-before-validate", "retry-purity", "lock-order"] {
        assert!(timed.contains(rule), "missing timing for {rule}: {timed:?}");
    }
    assert!(report.total_ms > 0.0);
}
