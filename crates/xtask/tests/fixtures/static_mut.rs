//! Fixture for `atomic-ordering`: `static mut` is banned outright.

pub static mut COUNTER: u64 = 0;
