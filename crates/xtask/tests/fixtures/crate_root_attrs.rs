//! Fixture: a crate root that forbids unsafe code but does not warn on
//! undocumented items — violates `crate-root-attrs` exactly once.
//! (The attribute names are deliberately not spelled out in this
//! comment: rule R4 is a substring check over the raw source.)

#![forbid(unsafe_code)]

pub fn noop() {}
