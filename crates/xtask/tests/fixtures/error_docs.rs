// Fixture: violates `error-docs` exactly twice — the undocumented
// public `Result` fn and the never-constructed `PrqError::Imaginary`
// variant. The documented fn and the constructed variant must NOT be
// reported.

/// Error surface of the fixture.
pub enum PrqError {
    /// Constructed below.
    Bounds,
    /// Never constructed — dead error surface.
    Imaginary,
}

/// Documented faithfully.
///
/// # Errors
///
/// Returns [`PrqError::Bounds`] when `x` is negative.
pub fn checked(x: f64) -> Result<f64, PrqError> {
    if x < 0.0 {
        return Err(PrqError::Bounds);
    }
    Ok(x)
}

/// Missing its `# Errors` section.
pub fn undocumented(x: f64) -> Result<f64, PrqError> {
    checked(x + 1.0)
}
