// Fixture: violates `unseeded-rng` exactly once (`thread_rng`).
// The seeded construction below must NOT be reported.

pub fn sample() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn sample_seeded(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.gen()
}
