// Fixture: violates `invariant-marker` exactly once — `lookup_reject`
// carries no marker comment above it. `lookup_accept` is properly
// annotated and must NOT be reported.

pub fn lookup_reject(x: f64) -> f64 {
    x * 0.5
}

// INVARIANT: returned bound is rounded toward rejection, so a hit is
// always safe to prune.
pub fn lookup_accept(x: f64) -> f64 {
    x * 2.0
}
