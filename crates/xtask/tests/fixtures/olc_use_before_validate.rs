//! Fixture for `olc-use-before-validate`: a payload read taken under
//! an optimistic-read guard escapes (is returned) without a dominating
//! `validate()`; the correct validate-then-return shape is clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn torn_read(cell: &VersionCell, payload: &AtomicU64) -> Option<u64> {
    let Some(guard) = cell.optimistic_read() else {
        return None;
    };
    let value = payload.load(Ordering::Acquire);
    Some(value)
}

pub fn validated_read(cell: &VersionCell, payload: &AtomicU64) -> Option<u64> {
    let Some(guard) = cell.optimistic_read() else {
        return None;
    };
    let value = payload.load(Ordering::Acquire);
    if guard.validate() {
        return Some(value);
    }
    None
}
