//! Fixture for `unsafe-safety-comment`: an `unsafe` block with no
//! SAFETY comment is flagged; documented sites (block and fn alike)
//! and test-region sites are not.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

// SAFETY: dereferencing is the caller's contract — `read_byte` is
// itself `unsafe` and its docs state the validity requirement.
pub unsafe fn read_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unsafe_is_exempt() {
        let x = 7u8;
        assert_eq!(unsafe { *(&x as *const u8) }, 7);
    }
}
