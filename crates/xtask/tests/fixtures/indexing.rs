// Fixture: triggers the `indexing` heuristic exactly once (warning).
// The full-range slice `values[..]` must NOT be reported.

pub fn pick(values: &[u32], i: usize) -> u32 {
    let _all = &values[..];
    values[i]
}
