//! Fixture for `atomic-ordering`: forwarding a caller-supplied
//! `Ordering` hides the synchronization decision from the call site.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn forwarded(v: &AtomicU64, order: Ordering) -> u64 {
    v.load(order)
}
