// Fixture: violates `hot-path-alloc` exactly once — the hot root
// `descend` transitively reaches the `vec!` in `scale`. The `.push()`
// into the caller-owned `&mut` buffer must NOT be reported.

// HOT-PATH: candidate descent loop
pub fn descend(values: &[f64], limit: f64, out: &mut Vec<usize>) -> f64 {
    let mut acc = 0.0;
    for (i, v) in values.iter().enumerate() {
        if *v <= limit {
            out.push(i);
            acc += scale(*v);
        }
    }
    acc
}

fn scale(v: f64) -> f64 {
    let doubled = vec![v, v];
    doubled.len() as f64 * v
}
