// Fixture: violates `panic-free` exactly once (the library `.unwrap()`).
// The test-module unwrap below must NOT be reported.

pub fn first(values: &[u32]) -> u32 {
    values.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
