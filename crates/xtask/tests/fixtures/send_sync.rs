//! Fixture for `send-sync-audit`: a manual `unsafe impl Sync` is
//! flagged even when it carries a SAFETY comment — only an allowlist
//! entry with the audit argument can accept one. Types with
//! auto-derived thread safety are untouched.

use std::cell::UnsafeCell;

pub struct Racy {
    pub cell: UnsafeCell<u64>,
}

// SAFETY: the cell is only touched through the crate's accessors.
unsafe impl Sync for Racy {}

pub struct Plain(pub u64);
