// Fixture: violates `panic-free` exactly once via the `panic!` macro.
// `rpanic!` (different ident) and the string literal must not match.

pub fn checked(flag: bool) -> &'static str {
    if flag {
        panic!("boom");
    }
    "a panic! inside a string is not a macro call"
}
