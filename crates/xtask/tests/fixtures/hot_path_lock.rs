//! Fixture for `hot-path-lock`: a `Mutex` acquisition two calls below
//! a hot root is flagged with the full chain; the same lock in a cold
//! (unreachable-from-hot) function is not.

use std::sync::Mutex;

pub struct Stats {
    counts: Mutex<u64>,
}

// HOT-PATH: per-candidate probability predicate.
pub fn passes(s: &Stats, x: f64) -> bool {
    bump(s);
    x > 0.5
}

fn bump(s: &Stats) {
    *s.counts.lock().unwrap_or_else(|e| e.into_inner()) += 1;
}

pub fn cold_report(s: &Stats) -> u64 {
    *s.counts.lock().unwrap_or_else(|e| e.into_inner())
}
