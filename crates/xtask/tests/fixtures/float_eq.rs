// Fixture: violates `float-eq` exactly once (`x == 0.25`).
// The tolerance comparison and the integer equality must NOT be
// reported.

pub fn is_quarter(x: f64) -> bool {
    x == 0.25
}

pub fn is_close(x: f64) -> bool {
    (x - 0.25).abs() < 1e-12
}

pub fn is_zero(n: usize) -> bool {
    n == 0
}
