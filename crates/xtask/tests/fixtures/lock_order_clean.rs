//! Fixture for `lock-order` (negative): both functions acquire the
//! same classes in one global order, so the lock graph has a single
//! edge and no cycle.

pub fn setup(s: &Shared) {
    s.a.lock();
    s.b.lock();
}

pub fn teardown(s: &Shared) {
    s.a.lock();
    s.b.lock();
}
