//! Fixture for `retry-purity`: a closure passed to `read_consistent`
//! that bumps a shared counter is flagged, as is a `// RETRY-SAFE:` fn
//! that pushes through a `&mut` parameter; the pure closure and the
//! pure marked fn are clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn impure_counter(cell: &VersionCell, hits: &AtomicU64) -> Option<u64> {
    cell.read_consistent(3, || hits.fetch_add(1, Ordering::SeqCst))
}

pub fn pure_read(cell: &VersionCell, payload: &AtomicU64) -> Option<u64> {
    cell.read_consistent(3, || payload.load(Ordering::Acquire))
}

// RETRY-SAFE: callers re-run this on validation failure.
pub fn stash(out: &mut Vec<u64>, v: u64) {
    out.push(v);
}

// RETRY-SAFE: pure decode of a version word.
pub fn decode(word: u64) -> u64 {
    word >> 1
}
