//! Fixture for `lock-order`: three functions acquire the lock classes
//! `a`, `b`, `c` in pairwise-conflicting orders — the third hop runs
//! through a callee — forming the cycle a -> b -> c -> a.

pub fn ab(s: &Shared) {
    s.a.lock();
    s.b.lock();
}

pub fn bc(s: &Shared) {
    s.b.lock();
    s.c.lock();
}

pub fn ca(s: &Shared) {
    s.c.lock();
    reacquire(s);
}

fn reacquire(s: &Shared) {
    s.a.lock();
}
