//! Fixture: passes every rule. Exercises the exemptions: test-region
//! panics, seeded RNG, tolerance-based float comparison, annotated
//! lookup, and both crate-root attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Tolerance compare.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9
}

// INVARIANT: monotone in `x`; callers rely on round-down behavior so
// the reported probability bound never exceeds the true value.
/// Conservative table lookup.
pub fn lookup_bound(x: f64) -> f64 {
    close(x, 0.5);
    x.floor()
}

/// Cast to a float never truncates an integer's order of magnitude —
/// exempt from `lossy-cast`.
pub fn as_fraction(hits: u32) -> f64 {
    hits as f64
}

/// A documented fallible API — exempt from `error-docs`.
///
/// # Errors
///
/// Returns the input as an error message when it is negative.
pub fn checked_sqrt(x: f64) -> Result<f64, String> {
    if x < 0.0 {
        return Err(format!("negative: {x}"));
    }
    Ok(x.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_allowed_here() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), v[0]);
        if close(0.1, 0.2) {
            unreachable!("tolerance too wide");
        }
    }
}
