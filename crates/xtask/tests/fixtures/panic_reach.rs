// Fixture: violates `panic-reachability` exactly once — public `entry`
// reaches the `panic!` in private `inner`. The `# Panics`-documented
// sibling and the `debug_assert!` must NOT be reported.

/// Clamps to the unit interval the hard way.
pub fn entry(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    inner(x)
}

fn inner(x: f64) -> f64 {
    if x < 0.0 {
        panic!("negative input");
    }
    x.min(1.0)
}

/// Reciprocal.
///
/// # Panics
///
/// Panics when `x` is not positive.
pub fn documented(x: f64) -> f64 {
    assert!(x > 0.0);
    1.0 / x
}
