// Fixture: violates `lossy-cast` exactly once (`total as u32`).
// Casts to `f64` and the test-module cast must NOT be reported.

pub fn shrink(total: u64) -> u32 {
    total as u32
}

pub fn ratio(hits: f64, total: f64) -> f64 {
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_allowed_here() {
        assert_eq!(super::shrink(7i32 as u64), 7);
    }
}
