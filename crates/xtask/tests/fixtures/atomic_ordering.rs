//! Fixture for `atomic-ordering`: a `Relaxed` access without an
//! ORDERING comment is flagged; a commented `Relaxed`, explicit
//! `Acquire`/`Release` pairs, and non-atomic `Vec::swap` are not.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn uncommented(v: &AtomicU64) -> u64 {
    v.load(Ordering::Relaxed)
}

pub fn paired(v: &AtomicU64) -> u64 {
    v.store(1, Ordering::Release);
    v.load(Ordering::Acquire)
}

pub fn slices(xs: &mut Vec<u64>) {
    xs.swap(0, 1);
}

// ORDERING: stats-only counter; no reader orders anything against it.
pub fn commented(v: &AtomicU64) -> u64 {
    v.load(Ordering::Relaxed)
}
