//! # gprq-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V–§VI), plus ablations. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.
//!
//! Every binary accepts `--n`, `--trials`, `--samples`, `--seed`
//! overrides so a laptop run can trade fidelity for time; defaults are
//! chosen to finish in minutes while preserving the papers' comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gprq_linalg::Vector;
use gprq_rtree::{RStarParams, RTree};
use gprq_workloads as workloads;

/// Simple `--key value` argument parser for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Gets a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// `true` if the flag was given (with any or no value).
    pub fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// Road-network records (point, index payload) — the shared input when
/// a bench builds several Phase-1 backends over the same workload.
pub fn road_records(n: usize, seed: u64) -> Vec<(Vector<2>, u32)> {
    workloads::road_network_2d(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u32))
        .collect()
}

/// Builds the road-network tree (the paper's 2-D dataset) with payload =
/// point index.
pub fn road_tree(n: usize, seed: u64) -> RTree<2, u32> {
    RTree::bulk_load(road_records(n, seed), RStarParams::paper_default(2))
}

/// Builds the Corel-like tree (the paper's 9-D dataset).
pub fn corel_tree(n: usize, seed: u64) -> (RTree<9, u32>, Vec<Vector<9>>) {
    let pts = workloads::corel_like_9d(n, seed);
    let tree = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(9),
    );
    (tree, pts)
}

/// Shared plumbing for the bench **guard** binaries (`phase3`, `obs`,
/// `throughput`): each records its headline metric in a hand-rolled
/// JSON file and enforces a bound on it — on the live run *and* against
/// the committed file via `--check` (CI's stale gate). The guards
/// differ only in which way the bound points (a speedup floor vs an
/// overhead ceiling) and which JSON key carries the metric; everything
/// else — schema gate, mini JSON parser, file write — lives here once.
pub mod guard {
    use std::io::Write as _;

    /// Which way a guarded metric must point.
    #[derive(Debug, Clone, Copy)]
    pub enum Bound {
        /// The metric must be at least this (a speedup / QPS floor).
        AtLeast(f64),
        /// The metric must be at most this (an overhead ceiling).
        AtMost(f64),
    }

    impl Bound {
        /// Does `value` satisfy the bound?
        pub fn admits(self, value: f64) -> bool {
            match self {
                Bound::AtLeast(floor) => value >= floor,
                Bound::AtMost(ceiling) => value <= ceiling,
            }
        }

        /// The threshold the bound compares against.
        pub fn threshold(self) -> f64 {
            match self {
                Bound::AtLeast(v) | Bound::AtMost(v) => v,
            }
        }

        fn describe(self) -> &'static str {
            match self {
                Bound::AtLeast(_) => "floor",
                Bound::AtMost(_) => "budget",
            }
        }
    }

    /// One bench's guarded metric: the JSON key it is recorded under,
    /// the schema version of the file, and the bound enforced on it.
    #[derive(Debug, Clone, Copy)]
    pub struct Guard {
        /// Bench name, for messages.
        pub bench: &'static str,
        /// Schema version stamped into the JSON; `--check` rejects any
        /// other (a layout change without a regenerated file is stale).
        pub schema: u64,
        /// JSON key (unquoted) holding the guarded metric.
        pub metric: &'static str,
        /// The pass condition.
        pub bound: Bound,
    }

    impl Guard {
        /// Live-run enforcement: exits non-zero when `value` violates
        /// the bound — the bench is a guard, not just a report.
        ///
        /// # Panics
        ///
        /// When the bound is violated; that is the guard firing.
        pub fn enforce(&self, value: f64) {
            assert!(
                self.bound.admits(value),
                "{} bench violated its {}: {} = {value:.4} vs {:.4}",
                self.bench,
                self.bound.describe(),
                self.metric,
                self.bound.threshold(),
            );
        }

        /// The `--check` stale gate: the committed file must exist,
        /// carry the current schema, and record a metric within the
        /// bound.
        ///
        /// # Panics
        ///
        /// On a missing/stale/out-of-bound file — CI turns this into a
        /// failed lane with a "regenerate" instruction.
        pub fn check(&self, path: &str) {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                panic!(
                    "{path} missing — run the {} bench to regenerate: {e}",
                    self.bench
                )
            });
            let schema = extract_number(&text, "schema")
                .unwrap_or_else(|| panic!("{path} predates the schema field — regenerate"));
            assert!(
                (schema - self.schema as f64).abs() < f64::EPSILON,
                "{path} has schema {schema}, expected {} — stale file, regenerate",
                self.schema,
            );
            let value = extract_number(&text, self.metric)
                .unwrap_or_else(|| panic!("{path} lacks {} — regenerate", self.metric));
            assert!(
                self.bound.admits(value),
                "{path} records {} = {value} outside the {} {:.4}",
                self.metric,
                self.bound.describe(),
                self.bound.threshold(),
            );
            println!(
                "{path}: schema {}, {} = {value} within the {} {:.4}",
                self.schema,
                self.metric,
                self.bound.describe(),
                self.bound.threshold(),
            );
        }

        /// Writes the bench's JSON report and names the file.
        ///
        /// # Panics
        ///
        /// On I/O failure — a bench that cannot record its result has
        /// failed.
        pub fn write(&self, path: &str, json: &str) {
            let mut file = std::fs::File::create(path).expect("create output file");
            file.write_all(json.as_bytes()).expect("write output file");
            println!("wrote {path}");
        }
    }

    /// Pulls the number following `"key":` out of a flat JSON file —
    /// enough parser for our own hand-rolled output. `key` is the bare
    /// key name, without quotes.
    pub fn extract_number(text: &str, key: &str) -> Option<f64> {
        let quoted = format!("\"{key}\"");
        let at = text.find(&quoted)? + quoted.len();
        let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

/// Renders one row of a fixed-width table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:>10} |");
    for c in cells {
        s.push_str(&format!(" {c:>9} |"));
    }
    s
}

/// Renders a table header with the paper's six strategy columns (plus
/// optional extra columns).
pub fn strategy_header(extra: &[&str]) -> String {
    let mut cells: Vec<String> = gprq_core::StrategySet::PAPER_COMBINATIONS
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    cells.extend(extra.iter().map(|s| s.to_string()));
    let mut out = row("", &cells);
    out.push('\n');
    out.push_str(&"-".repeat(out.len().saturating_sub(1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_defaults() {
        let args = Args { pairs: vec![] };
        assert_eq!(args.get("n", 42usize), 42);
        assert!(!args.flag("full"));
    }

    #[test]
    fn args_typed_lookup() {
        let args = Args {
            pairs: vec![
                ("n".into(), "100".into()),
                ("gamma".into(), "2.5".into()),
                ("full".into(), String::new()),
            ],
        };
        assert_eq!(args.get("n", 0usize), 100);
        assert_eq!(args.get("gamma", 0.0f64), 2.5);
        assert!(args.flag("full"));
        // Unparseable falls back to default.
        assert_eq!(args.get("full", 7usize), 7);
    }

    #[test]
    fn trees_build() {
        let t = road_tree(500, 1);
        assert_eq!(t.len(), 500);
        let (t9, pts) = corel_tree(300, 1);
        assert_eq!(t9.len(), 300);
        assert_eq!(pts.len(), 300);
    }

    #[test]
    fn guard_bounds_and_parser() {
        use guard::{extract_number, Bound, Guard};
        assert!(Bound::AtLeast(2.0).admits(2.0));
        assert!(!Bound::AtLeast(2.0).admits(1.999));
        assert!(Bound::AtMost(1.03).admits(1.03));
        assert!(!Bound::AtMost(1.03).admits(1.04));

        let json = "{\n  \"schema\": 1,\n  \"qps_ratio\": 3.25,\n  \"neg\": -1.5e-3\n}\n";
        assert_eq!(extract_number(json, "schema"), Some(1.0));
        assert_eq!(extract_number(json, "qps_ratio"), Some(3.25));
        assert_eq!(extract_number(json, "neg"), Some(-0.0015));
        assert_eq!(extract_number(json, "absent"), None);

        // Round-trip: write then check against the same guard.
        let g = Guard {
            bench: "unit",
            schema: 1,
            metric: "qps_ratio",
            bound: Bound::AtLeast(2.0),
        };
        g.enforce(3.25);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/guard_unit_test.json"
        );
        g.write(path, json);
        g.check(path);
        std::fs::remove_file(path).expect("cleanup");
    }

    #[test]
    fn table_rendering() {
        let h = strategy_header(&["ANS"]);
        assert!(h.contains("RR+BF"));
        assert!(h.contains("ANS"));
        let r = row("γ=10", &["1".into(), "2".into()]);
        assert!(r.contains("γ=10"));
    }
}
