//! # gprq-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V–§VI), plus ablations. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.
//!
//! Every binary accepts `--n`, `--trials`, `--samples`, `--seed`
//! overrides so a laptop run can trade fidelity for time; defaults are
//! chosen to finish in minutes while preserving the papers' comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gprq_linalg::Vector;
use gprq_rtree::{RStarParams, RTree};
use gprq_workloads as workloads;

/// Simple `--key value` argument parser for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Gets a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// `true` if the flag was given (with any or no value).
    pub fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// Builds the road-network tree (the paper's 2-D dataset) with payload =
/// point index.
pub fn road_tree(n: usize, seed: u64) -> RTree<2, u32> {
    let pts = workloads::road_network_2d(n, seed);
    RTree::bulk_load(
        pts.into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u32))
            .collect(),
        RStarParams::paper_default(2),
    )
}

/// Builds the Corel-like tree (the paper's 9-D dataset).
pub fn corel_tree(n: usize, seed: u64) -> (RTree<9, u32>, Vec<Vector<9>>) {
    let pts = workloads::corel_like_9d(n, seed);
    let tree = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(9),
    );
    (tree, pts)
}

/// Renders one row of a fixed-width table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:>10} |");
    for c in cells {
        s.push_str(&format!(" {c:>9} |"));
    }
    s
}

/// Renders a table header with the paper's six strategy columns (plus
/// optional extra columns).
pub fn strategy_header(extra: &[&str]) -> String {
    let mut cells: Vec<String> = gprq_core::StrategySet::PAPER_COMBINATIONS
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    cells.extend(extra.iter().map(|s| s.to_string()));
    let mut out = row("", &cells);
    out.push('\n');
    out.push_str(&"-".repeat(out.len().saturating_sub(1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_defaults() {
        let args = Args { pairs: vec![] };
        assert_eq!(args.get("n", 42usize), 42);
        assert!(!args.flag("full"));
    }

    #[test]
    fn args_typed_lookup() {
        let args = Args {
            pairs: vec![
                ("n".into(), "100".into()),
                ("gamma".into(), "2.5".into()),
                ("full".into(), String::new()),
            ],
        };
        assert_eq!(args.get("n", 0usize), 100);
        assert_eq!(args.get("gamma", 0.0f64), 2.5);
        assert!(args.flag("full"));
        // Unparseable falls back to default.
        assert_eq!(args.get("full", 7usize), 7);
    }

    #[test]
    fn trees_build() {
        let t = road_tree(500, 1);
        assert_eq!(t.len(), 500);
        let (t9, pts) = corel_tree(300, 1);
        assert_eq!(t9.len(), 300);
        assert_eq!(pts.len(), 300);
    }

    #[test]
    fn table_rendering() {
        let h = strategy_header(&["ANS"]);
        assert!(h.contains("RR+BF"));
        assert!(h.contains("ANS"));
        let r = row("γ=10", &["1".into(), "2".into()]);
        assert!(r.contains("γ=10"));
    }
}
