//! **Concurrent R\*-tree bench guard** — readers×writers throughput grid
//! for the OLC read path ([`ConcurrentRTree`]), written to
//! `BENCH_concurrent.json` so reader scaling and the single-thread
//! overhead of the optimistic protocol are tracked over time.
//!
//! The grid runs every reader count in `{1, 2, 4, 8}`, each with 0 and
//! 1 background writer churning inserts/removes outside the query
//! windows; each cell is the minimum wall time over alternating passes.
//! Guards (the binary exits non-zero when one fails):
//!
//! * **no single-thread regression** — one concurrent-tree reader keeps
//!   at least [`MIN_SINGLE_RATIO`] of the sequential [`RTree`]'s
//!   throughput;
//! * **no collapse** — 8 readers retain at least [`MIN_NO_COLLAPSE`] of
//!   the single-reader aggregate throughput on any machine;
//! * **scaling** — on machines with ≥ 8 cores, 8 readers reach at least
//!   [`MIN_SCALING_8R`]× the single-reader throughput. The floor is
//!   core-count-aware because a 1-core container cannot scale by adding
//!   threads; the applied floor is recorded in the JSON.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin concurrent \
//!     [--n 50000] [--queries 400] [--passes 3] [--out BENCH_concurrent.json]
//! cargo run -p gprq-bench --release --bin concurrent -- --check   # validate committed JSON
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use gprq_bench::Args;
use gprq_linalg::Vector;
use gprq_rtree::{ConcQueryScratch, ConcurrentRTree, RStarParams, RTree, Rect, SearchStats};
use gprq_workloads::road_network_2d;

/// Bump when the JSON layout changes; `--check` rejects older files.
const SCHEMA: u64 = 1;

/// Reader counts in the grid.
const READERS: [usize; 4] = [1, 2, 4, 8];

/// Scaling floor at 8 readers — applied only when the machine has at
/// least 8 cores (ISSUE acceptance: ≥ 4× at 8 readers).
const MIN_SCALING_8R: f64 = 4.0;

/// No-collapse floor applied on ANY machine: 8 readers must retain this
/// fraction of the single-reader aggregate throughput.
const MIN_NO_COLLAPSE: f64 = 0.35;

/// Single concurrent-tree reader vs the sequential tree: the seqlock
/// capture/validate overhead costs roughly 5× on point-sized windows
/// (measured 0.19 on the 1-core reference box); the floor catches a
/// further regression, not the known protocol cost.
const MIN_SINGLE_RATIO: f64 = 0.15;

fn main() {
    let args = Args::parse();
    let out = args.get("out", String::from("BENCH_concurrent.json"));
    if args.flag("check") {
        check(&out);
        return;
    }

    let n = args.get("n", 50_000usize);
    let queries = args.get("queries", 400usize);
    let passes = args.get("passes", 3usize).max(1);
    let seed = args.get("seed", 42u64);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    println!("Concurrent R*-tree bench: readers x writers throughput grid");
    println!("{n} road-network points; {queries} queries/reader; {passes} passes; {cores} cores\n");

    // Both trees insert-built from the same stream, so the comparison
    // isolates the read-path protocol, not STR packing vs insertion.
    let points = road_network_2d(n, seed);
    let conc: ConcurrentRTree<2, u32> = ConcurrentRTree::new();
    let mut seq = RTree::with_params(RStarParams::paper_default(2));
    for (i, p) in points.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(u32::MAX);
        conc.insert(*p, id);
        seq.insert(*p, id);
    }
    // Churn set for the writer thread, offset outside the data extent.
    let churn: Vec<(Vector<2>, u32)> = points
        .iter()
        .take(2_000)
        .enumerate()
        .map(|(i, p)| {
            (
                Vector::from([p[0] + 5_000.0, p[1] + 5_000.0]),
                u32::try_from(i).unwrap_or(0).saturating_add(1_000_000),
            )
        })
        .collect();
    let windows = query_windows();

    // Sequential baseline: one thread, same query mix.
    let mut baseline_secs = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        let mut stats = SearchStats::default();
        let mut hits = Vec::new();
        let mut total = 0usize;
        for q in 0..queries {
            let rect = &windows[q % windows.len()];
            seq.query_rect_into(rect, &mut stats, &mut hits);
            total += hits.len();
        }
        baseline_secs = baseline_secs.min(started.elapsed().as_secs_f64());
        assert!(total > 0, "degenerate workload: no hits");
    }
    let baseline_qps = queries as f64 / baseline_secs.max(f64::MIN_POSITIVE);

    // The readers x writers grid over the concurrent tree.
    let mut cells = Vec::new();
    let mut contended_retries = 0usize;
    let mut contended_fallbacks = 0usize;
    for readers in READERS {
        for writers in [0usize, 1] {
            let mut best = f64::INFINITY;
            let mut cell_stats = SearchStats::default();
            for _ in 0..passes {
                let (secs, stats) = run_cell(&conc, &windows, readers, writers, queries, &churn);
                if secs < best {
                    best = secs;
                    cell_stats = stats;
                }
            }
            let qps = (readers * queries) as f64 / best.max(f64::MIN_POSITIVE);
            println!(
                "readers={readers} writers={writers}: {best:.4} s, {qps:.0} q/s \
                 (attempts {}, retries {}, fallbacks {})",
                cell_stats.olc_attempts, cell_stats.olc_retries, cell_stats.olc_fallbacks
            );
            if writers == 1 {
                contended_retries += cell_stats.olc_retries;
                contended_fallbacks += cell_stats.olc_fallbacks;
            }
            cells.push((readers, writers, best, qps));
        }
    }

    let qps_at = |r: usize, w: usize| {
        cells
            .iter()
            .find(|(cr, cw, _, _)| *cr == r && *cw == w)
            .map_or(0.0, |(_, _, _, qps)| *qps)
    };
    let single_qps = qps_at(1, 0);
    let eight_qps = qps_at(8, 0);
    let single_ratio = single_qps / baseline_qps.max(f64::MIN_POSITIVE);
    let scaling_8r = eight_qps / single_qps.max(f64::MIN_POSITIVE);
    // Core-count-aware floor: full scaling on >= 8 cores, otherwise only
    // the no-collapse bound is enforceable.
    let scaling_floor = if cores >= 8 {
        MIN_SCALING_8R
    } else {
        MIN_NO_COLLAPSE
    };

    println!("\nsequential baseline: {baseline_qps:.0} q/s");
    println!("concurrent single reader: {single_qps:.0} q/s (ratio {single_ratio:.2}, floor {MIN_SINGLE_RATIO})");
    println!("8-reader scaling: {scaling_8r:.2}x (floor {scaling_floor}, cores {cores})");
    println!("contended cells: {contended_retries} retries, {contended_fallbacks} fallbacks");

    let cell_json: Vec<String> = cells
        .iter()
        .map(|(r, w, secs, qps)| {
            format!(
                "    {{ \"readers\": {r}, \"writers\": {w}, \"secs\": {secs:.6}, \"qps\": {qps:.1} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"n\": {n},\n  \"queries_per_reader\": {queries},\n  \
         \"passes\": {passes},\n  \"seed\": {seed},\n  \"cores\": {cores},\n  \
         \"baseline_qps\": {baseline_qps:.1},\n  \"single_reader_qps\": {single_qps:.1},\n  \
         \"single_ratio\": {single_ratio:.4},\n  \"min_single_ratio\": {MIN_SINGLE_RATIO},\n  \
         \"scaling_8r\": {scaling_8r:.4},\n  \"scaling_floor\": {scaling_floor},\n  \
         \"contended_retries\": {contended_retries},\n  \
         \"contended_fallbacks\": {contended_fallbacks},\n  \"grid\": [\n{}\n  ]\n}}\n",
        cell_json.join(",\n")
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    println!("wrote {out}");

    assert!(
        single_ratio >= MIN_SINGLE_RATIO,
        "concurrent tree too slow single-threaded: {single_ratio:.2} < {MIN_SINGLE_RATIO}"
    );
    assert!(
        scaling_8r >= scaling_floor,
        "8-reader scaling {scaling_8r:.2}x below floor {scaling_floor}x ({cores} cores)"
    );
}

/// One grid cell: `readers` threads each run `queries` rectangle
/// queries over the fixed window mix while `writers` background threads
/// churn out-of-window inserts/removes. Returns (wall seconds, merged
/// reader-side search stats).
fn run_cell(
    tree: &ConcurrentRTree<2, u32>,
    windows: &[Rect<2>],
    readers: usize,
    writers: usize,
    queries: usize,
    churn: &[(Vector<2>, u32)],
) -> (f64, SearchStats) {
    let stop = AtomicBool::new(false);
    let live_readers = AtomicUsize::new(readers);
    let stop_ref = &stop;
    let live_ref = &live_readers;
    let mut reader_stats = vec![SearchStats::default(); readers];
    let started = Instant::now();
    // ORDERING: Relaxed — every `stop` access below is an advisory
    // shutdown flag; no data is published through it (the scope join is
    // the happens-before edge for all reader/writer results), and a
    // stale read only costs one extra churn step.
    std::thread::scope(|scope| {
        for _ in 0..writers {
            scope.spawn(move || {
                // ORDERING: Relaxed — advisory shutdown flag, see above.
                while !stop_ref.load(Ordering::Relaxed) {
                    for (p, d) in churn {
                        // ORDERING: Relaxed — advisory, as above.
                        if stop_ref.load(Ordering::Relaxed) {
                            return;
                        }
                        tree.insert(*p, *d);
                    }
                    for (p, d) in churn {
                        // ORDERING: Relaxed — advisory, as above.
                        if stop_ref.load(Ordering::Relaxed) {
                            return;
                        }
                        tree.remove(p, d);
                    }
                }
            });
        }
        for stats in &mut reader_stats {
            scope.spawn(move || {
                let mut scratch = ConcQueryScratch::new();
                let mut hits = Vec::new();
                for q in 0..queries {
                    let rect = &windows[q % windows.len()];
                    tree.query_rect_with_scratch(rect, stats, &mut scratch, &mut hits);
                }
                // Last reader out stops the churn writers; thread::scope
                // then joins everything without a separate monitor.
                if live_ref.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // ORDERING: Relaxed — advisory shutdown signal only;
                    // the scope join publishes every result.
                    stop_ref.store(true, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut merged = SearchStats::default();
    for s in &reader_stats {
        merged.merge(s);
    }
    (elapsed, merged)
}

/// A mix of query windows over the road-network extent: two hotspot
/// windows (dense), one suburban (sparse), one wide scan.
fn query_windows() -> Vec<Rect<2>> {
    vec![
        Rect::centered(&Vector::from([350.0, 420.0]), &Vector::from([40.0, 40.0])),
        Rect::centered(&Vector::from([700.0, 650.0]), &Vector::from([40.0, 40.0])),
        Rect::centered(&Vector::from([900.0, 100.0]), &Vector::from([60.0, 60.0])),
        Rect::centered(&Vector::from([500.0, 500.0]), &Vector::from([150.0, 150.0])),
    ]
}

/// Validates the committed `BENCH_concurrent.json`: present, current
/// schema, and the recorded ratios at or above their recorded floors.
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path} missing — run the concurrent bench to regenerate: {e}"));
    let schema = extract_number(&text, "\"schema\"")
        .unwrap_or_else(|| panic!("{path} predates the schema field — regenerate"));
    assert!(
        (schema - SCHEMA as f64).abs() < f64::EPSILON,
        "{path} has schema {schema}, expected {SCHEMA} — stale file, regenerate"
    );
    let single_ratio = extract_number(&text, "\"single_ratio\"")
        .unwrap_or_else(|| panic!("{path} lacks single_ratio — regenerate"));
    let min_single = extract_number(&text, "\"min_single_ratio\"")
        .unwrap_or_else(|| panic!("{path} lacks min_single_ratio — regenerate"));
    let scaling = extract_number(&text, "\"scaling_8r\"")
        .unwrap_or_else(|| panic!("{path} lacks scaling_8r — regenerate"));
    let floor = extract_number(&text, "\"scaling_floor\"")
        .unwrap_or_else(|| panic!("{path} lacks scaling_floor — regenerate"));
    assert!(
        single_ratio >= min_single,
        "{path} records single-thread ratio {single_ratio} < floor {min_single}"
    );
    assert!(
        scaling >= floor,
        "{path} records 8-reader scaling {scaling}x < floor {floor}x"
    );
    println!(
        "{path}: schema {SCHEMA}, single ratio {single_ratio} >= {min_single}, \
         scaling {scaling}x >= {floor}x"
    );
}

/// Pulls the number following `"key":` out of the flat JSON file —
/// enough parser for our own hand-rolled output.
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
