//! **Resilience bench guard** — Phase-3 sample counts on the seed
//! workload with and without Wilson-interval early termination, written
//! to `BENCH_resilience.json` so the saving is tracked over time.
//!
//! The baseline evaluator spends the full per-object budget on every
//! candidate (the paper's fixed-sample regime); the sequential evaluator
//! stops a candidate as soon as its confidence interval clears θ. Both
//! run the same queries over the same tree with the same seeds, so the
//! recorded ratio isolates the early-termination effect. The binary
//! exits non-zero if early termination fails to reduce samples — it is
//! a guard, not just a report.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin resilience \
//!     [--n 20000] [--trials 5] [--samples 100000] [--out BENCH_resilience.json]
//! ```

use std::io::Write as _;

use gprq_bench::{road_tree, Args};
use gprq_core::{
    EvalBudget, QueryStats, ResilientExecutor, SequentialMonteCarloEvaluator, StrategySet,
};
use gprq_workloads::{eq34_covariance, random_query_centers};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 20_000usize);
    let trials = args.get("trials", 5usize);
    let samples = args.get("samples", 100_000usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);
    let out = args.get("out", String::from("BENCH_resilience.json"));

    println!("Resilience bench: Phase-3 samples, CI early termination on vs off");
    println!(
        "dataset: road-network substitute, n = {n}; {trials} queries; budget {samples}/object\n"
    );

    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let centers = random_query_centers(&data, trials, seed ^ 0xABCD);
    let sigma = eq34_covariance(10.0);
    let budget = EvalBudget {
        max_samples_per_object: samples,
        ..EvalBudget::UNLIMITED
    };

    let mut totals = [QueryStats::default(), QueryStats::default()];
    for (mode, total) in totals.iter_mut().enumerate() {
        let early = mode == 0;
        for (t, (_, center)) in centers.iter().enumerate() {
            let mut eval = SequentialMonteCarloEvaluator::with_defaults(seed + t as u64)
                .with_early_termination(early);
            let mut exec = ResilientExecutor::new(StrategySet::ALL).with_budget(budget);
            let outcome = exec
                .execute(&tree, *center, sigma, delta, theta, &mut eval)
                .expect("seed workload executes");
            assert!(
                !outcome.report.is_degraded(),
                "seed workload must run undegraded: {}",
                outcome.report
            );
            total.merge(&outcome.stats);
        }
    }
    let [with_ci, without_ci] = totals;

    let ratio = with_ci.phase3_samples as f64 / without_ci.phase3_samples.max(1) as f64;
    println!("                        with CI      without CI");
    println!(
        "phase3 samples      {:>12} {:>14}",
        with_ci.phase3_samples, without_ci.phase3_samples
    );
    println!(
        "integrations        {:>12} {:>14}",
        with_ci.integrations, without_ci.integrations
    );
    println!(
        "early terminations  {:>12} {:>14}",
        with_ci.early_terminations, without_ci.early_terminations
    );
    println!(
        "uncertain           {:>12} {:>14}",
        with_ci.uncertain, without_ci.uncertain
    );
    println!("\nsample ratio (with/without): {ratio:.4}");

    let json = format!(
        "{{\n  \"n\": {n},\n  \"trials\": {trials},\n  \"samples_per_object\": {samples},\n  \
         \"delta\": {delta},\n  \"theta\": {theta},\n  \"seed\": {seed},\n  \
         \"with_early_termination\": {{\n    \"phase3_samples\": {}, \"integrations\": {}, \
         \"early_terminations\": {}, \"uncertain\": {}\n  }},\n  \
         \"without_early_termination\": {{\n    \"phase3_samples\": {}, \"integrations\": {}, \
         \"early_terminations\": {}, \"uncertain\": {}\n  }},\n  \"sample_ratio\": {ratio:.6}\n}}\n",
        with_ci.phase3_samples,
        with_ci.integrations,
        with_ci.early_terminations,
        with_ci.uncertain,
        without_ci.phase3_samples,
        without_ci.integrations,
        without_ci.early_terminations,
        without_ci.uncertain,
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    println!("wrote {out}");

    // Guard: the whole point of the sequential evaluator.
    assert!(
        with_ci.phase3_samples < without_ci.phase3_samples,
        "early termination must reduce Phase-3 samples \
         ({} vs {})",
        with_ci.phase3_samples,
        without_ci.phase3_samples
    );
    // Both modes are Monte Carlo, so truly borderline objects can land
    // differently — but the answer sets must agree to within a handful
    // of boundary cases, or the early stop is biasing verdicts.
    let drift = with_ci.answers.abs_diff(without_ci.answers);
    let tolerance = (without_ci.answers / 100).max(2);
    assert!(
        drift <= tolerance,
        "early termination shifted the answer count too far \
         ({} vs {}, tolerance {tolerance})",
        with_ci.answers,
        without_ci.answers
    );
}
