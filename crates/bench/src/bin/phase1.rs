//! **Phase-1 bench guard** — wall-clock comparison of the
//! cache-conscious flat index ([`FlatRTree`]) against the pointer-based
//! [`RTree`] on the paper's 50 000-point road-network workload, written
//! to `BENCH_phase1.json` so the speedup is tracked over time.
//!
//! Four lanes run the same seeded rectangle set: the pointer tree
//! (solo descents), a frozen image of that exact tree, the packed
//! fanout-64 flat layout (solo descents — the guarded headline), and
//! the packed layout's batched multi-rect descent. Passes alternate
//! between the lanes and the minimum per-lane wall time is kept, so
//! scheduler noise cancels instead of accumulating into one lane. The
//! binary exits non-zero if the packed-layout speedup drops below the
//! floor — it is a guard, not just a report. It also re-verifies
//! candidate parity on the live workload: frozen-vs-pointer bitwise
//! (stats included) and packed-vs-pointer as id sets.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin phase1 \
//!     [--n 50000] [--queries 1200] [--passes 5] [--seed 42] \
//!     [--out BENCH_phase1.json]
//! cargo run -p gprq-bench --release --bin phase1 -- --check   # validate committed JSON
//! ```

use std::time::Instant;

use gprq_bench::guard::{Bound, Guard};
use gprq_bench::{road_records, Args};
use gprq_linalg::Vector;
use gprq_rtree::{FlatRTree, RStarParams, RTree, Rect, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bump when the JSON layout changes; `--check` rejects older files.
const SCHEMA: u64 = 1;

/// Minimum tolerated pointer-tree/flat-index wall-time ratio.
const MIN_SPEEDUP: f64 = 2.0;

/// The guarded metric: `speedup` must stay at or above the floor.
const GUARD: Guard = Guard {
    bench: "phase1",
    schema: SCHEMA,
    metric: "speedup",
    bound: Bound::AtLeast(MIN_SPEEDUP),
};

fn main() {
    let args = Args::parse();
    let out = args.get("out", String::from("BENCH_phase1.json"));
    if args.flag("check") {
        GUARD.check(&out);
        return;
    }

    let n = args.get("n", 50_000usize);
    let queries = args.get("queries", 1200usize).max(1);
    let passes = args.get("passes", 5usize).max(1);
    let seed = args.get("seed", 42u64);

    println!("Phase-1 index bench: flat SoA layouts vs the pointer R*-tree");
    println!("{n} road-network points; {queries} rect queries; {passes} alternating passes\n");

    let records = road_records(n, seed);
    let tree = RTree::bulk_load(records.clone(), RStarParams::paper_default(2));
    let frozen = FlatRTree::freeze(tree.clone());
    let packed = FlatRTree::bulk_load(records);
    let rects = query_rects(queries, seed ^ 0x5eed);

    // Parity on the live workload before timing anything: the frozen
    // image must reproduce the pointer tree bitwise (candidates, order,
    // stats); the packed layout must return the same candidate sets.
    let mut tree_visits = 0usize;
    let mut flat_visits = 0usize;
    {
        let mut out_tree = Vec::new();
        let mut out_flat = Vec::new();
        for rect in &rects {
            let mut st_tree = SearchStats::default();
            let mut st_frozen = SearchStats::default();
            let mut st_packed = SearchStats::default();
            tree.query_rect_into(rect, &mut st_tree, &mut out_tree);
            frozen.query_rect_into(rect, &mut st_frozen, &mut out_flat);
            assert_eq!(out_flat, out_tree, "frozen image diverges from source");
            assert_eq!(st_frozen, st_tree, "frozen stats diverge from source");
            packed.query_rect_into(rect, &mut st_packed, &mut out_flat);
            let mut a: Vec<u32> = out_tree.iter().map(|(_, d)| **d).collect();
            let mut b: Vec<u32> = out_flat.iter().map(|(_, d)| **d).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "packed layout candidate set diverges");
            tree_visits += st_tree.nodes_visited;
            flat_visits += st_packed.nodes_visited;
        }
    }

    // Timed lanes, alternating; keep the minimum wall time per lane.
    let mut best = [f64::INFINITY; 4]; // [pointer, frozen, packed, batched]
    let mut checksum = [0usize; 4];
    let mut buf = Vec::new();
    let mut batch_stats = vec![SearchStats::default(); rects.len()];
    let mut batch_out: Vec<Vec<(&Vector<2>, &u32)>> = vec![Vec::new(); rects.len()];
    for _ in 0..passes {
        let started = Instant::now();
        let mut stats = SearchStats::default();
        for rect in &rects {
            tree.query_rect_into(rect, &mut stats, &mut buf);
            checksum[0] += buf.len();
        }
        best[0] = best[0].min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let mut stats = SearchStats::default();
        for rect in &rects {
            frozen.query_rect_into(rect, &mut stats, &mut buf);
            checksum[1] += buf.len();
        }
        best[1] = best[1].min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let mut stats = SearchStats::default();
        for rect in &rects {
            packed.query_rect_into(rect, &mut stats, &mut buf);
            checksum[2] += buf.len();
        }
        best[2] = best[2].min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        packed.query_rects_into(&rects, &mut batch_stats, &mut batch_out);
        checksum[3] += batch_out.iter().map(Vec::len).sum::<usize>();
        best[3] = best[3].min(started.elapsed().as_secs_f64());
    }
    assert_eq!(checksum[0], checksum[1], "lane result counts diverge");
    assert_eq!(checksum[0], checksum[2], "lane result counts diverge");
    assert_eq!(checksum[0], checksum[3], "lane result counts diverge");

    let [pointer_secs, frozen_secs, flat_secs, batch_secs] = best;
    let tiny = f64::MIN_POSITIVE;
    let speedup = pointer_secs / flat_secs.max(tiny);
    let frozen_speedup = pointer_secs / frozen_secs.max(tiny);
    let batch_speedup = pointer_secs / batch_secs.max(tiny);

    println!("pointer R*-tree (min of {passes}): {pointer_secs:.4} s");
    println!("frozen flat     (min of {passes}): {frozen_secs:.4} s ({frozen_speedup:.2}x)");
    println!(
        "packed flat     (min of {passes}): {flat_secs:.4} s ({speedup:.2}x, floor {MIN_SPEEDUP}x)"
    );
    println!("packed batched  (min of {passes}): {batch_secs:.4} s ({batch_speedup:.2}x)");
    println!("node visits: pointer {tree_visits}, packed flat {flat_visits}");

    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"n\": {n},\n  \"queries\": {queries},\n  \
         \"passes\": {passes},\n  \"seed\": {seed},\n  \
         \"pointer_secs\": {pointer_secs:.6},\n  \"frozen_secs\": {frozen_secs:.6},\n  \
         \"flat_secs\": {flat_secs:.6},\n  \"batch_secs\": {batch_secs:.6},\n  \
         \"speedup\": {speedup:.4},\n  \"frozen_speedup\": {frozen_speedup:.4},\n  \
         \"batch_speedup\": {batch_speedup:.4},\n  \
         \"pointer_node_visits\": {tree_visits},\n  \"flat_node_visits\": {flat_visits},\n  \
         \"min_speedup\": {MIN_SPEEDUP}\n}}\n"
    );
    GUARD.write(&out, &json);

    // Guard: the whole point of freezing the tree into SoA arrays.
    GUARD.enforce(speedup);
}

/// Seeded PRQ-like rectangles over the road-network extent `[0, 1000]²`:
/// centers uniform, half-widths mixing tight (≈3) through moderate
/// (≈25) probes — the Phase-1 shapes the three-phase pipeline generates
/// for moderate δ and the paper's Σ scales.
fn query_rects(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]);
            let half = Vector::from([3.0 + rng.gen::<f64>() * 22.0, 3.0 + rng.gen::<f64>() * 22.0]);
            Rect::centered(&c, &half)
        })
        .collect()
}
