//! **Shared-cloud Phase-3 bench guard** — wall-clock comparison of the
//! shared-sample grid engine against the per-candidate baseline on the
//! paper-scale workload (≥ 1000 candidates × 100 000 samples), written to
//! `BENCH_phase3.json` so the speedup is tracked over time.
//!
//! Both modes run through [`ParallelIntegrator`] at the same thread
//! count; only [`Phase3Mode`] differs. Passes alternate between the
//! modes and the minimum per-mode wall time is kept, so scheduler noise
//! cancels instead of accumulating into one mode. The binary exits
//! non-zero if the speedup drops below the floor — it is a guard, not
//! just a report. It also cross-checks the two estimates (they use
//! different sample streams, so agreement is statistical, not bitwise)
//! and re-verifies the grid-vs-linear *exact hit-count parity* on the
//! live workload.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin phase3 \
//!     [--candidates 1000] [--samples 100000] [--passes 3] [--threads 0] \
//!     [--out BENCH_phase3.json]
//! cargo run -p gprq-bench --release --bin phase3 -- --check   # validate committed JSON
//! ```

use std::num::NonZeroUsize;
use std::time::Instant;

use gprq_bench::guard::{Bound, Guard};
use gprq_bench::Args;
use gprq_core::ext::parallel::{ParallelIntegrator, Phase3Mode};
use gprq_core::PrqQuery;
use gprq_gaussian::cloud::{CloudGrid, SampleCloud};
use gprq_linalg::Vector;
use gprq_workloads::eq34_covariance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bump when the JSON layout changes; `--check` rejects older files.
const SCHEMA: u64 = 1;

/// Minimum tolerated per-candidate/shared-cloud wall-time ratio.
const MIN_SPEEDUP: f64 = 5.0;

/// The guarded metric: `speedup` must stay at or above the floor.
const GUARD: Guard = Guard {
    bench: "phase3",
    schema: SCHEMA,
    metric: "speedup",
    bound: Bound::AtLeast(MIN_SPEEDUP),
};

/// Worst acceptable |shared − per-candidate| across candidates: both are
/// 100 000-sample Monte-Carlo estimates of the same probability, so the
/// gap is bounded by a few standard errors (σ ≤ 0.5/√n ≈ 0.0016).
const MAX_ESTIMATE_GAP: f64 = 0.02;

fn main() {
    let args = Args::parse();
    let out = args.get("out", String::from("BENCH_phase3.json"));
    if args.flag("check") {
        GUARD.check(&out);
        return;
    }

    let candidates = args.get("candidates", 1_000usize);
    let samples = args.get("samples", 100_000usize);
    let passes = args.get("passes", 3usize).max(1);
    let threads = args.get("threads", 0usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);

    println!("Phase-3 engine bench: shared cloud vs per-candidate sampling");
    println!(
        "{candidates} candidates; {samples} samples; {passes} alternating passes; \
         threads = {threads} (0 = all CPUs)\n"
    );

    let query = PrqQuery::new(
        Vector::from([500.0, 500.0]),
        eq34_covariance(10.0),
        delta,
        theta,
    )
    .expect("bench query is valid");
    let cands = spiral_candidates(candidates);

    let shared = ParallelIntegrator::new(samples, seed, threads)
        .expect("samples > 0")
        .with_mode(Phase3Mode::SharedCloud);
    let baseline = ParallelIntegrator::new(samples, seed, threads)
        .expect("samples > 0")
        .with_mode(Phase3Mode::PerCandidate);

    let mut best = [f64::INFINITY; 2]; // [shared, per-candidate]
    let mut probs: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..passes {
        for (mode, integrator) in [&shared, &baseline].into_iter().enumerate() {
            let started = Instant::now();
            let p = integrator.probabilities(&query, &cands);
            best[mode] = best[mode].min(started.elapsed().as_secs_f64());
            probs[mode] = p;
        }
    }
    let [shared_secs, baseline_secs] = best;
    let speedup = baseline_secs / shared_secs.max(f64::MIN_POSITIVE);

    // Statistical cross-check: different sample streams, same target.
    let worst_gap = probs[0]
        .iter()
        .zip(&probs[1])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        worst_gap <= MAX_ESTIMATE_GAP,
        "shared-cloud and per-candidate estimates diverged: worst gap {worst_gap}"
    );

    // Exact parity: the grid must count precisely the hits a linear scan
    // of the same cloud counts, for every candidate of the live workload.
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = NonZeroUsize::new(samples).expect("samples > 0");
    let cloud = SampleCloud::draw(query.gaussian(), budget, &mut rng);
    let grid = CloudGrid::build(&cloud);
    for c in &cands {
        assert_eq!(
            grid.count_within(c, query.delta()),
            cloud.count_within(c, query.delta()),
            "grid/linear hit-count mismatch at candidate {c:?}"
        );
    }

    println!("shared cloud   (min of {passes}): {shared_secs:.4} s");
    println!("per-candidate  (min of {passes}): {baseline_secs:.4} s");
    println!("speedup: {speedup:.2}x (floor {MIN_SPEEDUP}x)");
    println!("worst estimate gap: {worst_gap:.5} (cap {MAX_ESTIMATE_GAP})");
    println!("grid-vs-linear hit counts: exact match on {candidates} candidates");

    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"candidates\": {candidates},\n  \
         \"samples\": {samples},\n  \"passes\": {passes},\n  \"threads\": {threads},\n  \
         \"seed\": {seed},\n  \"delta\": {delta},\n  \"theta\": {theta},\n  \
         \"shared_cloud_secs\": {shared_secs:.6},\n  \
         \"per_candidate_secs\": {baseline_secs:.6},\n  \"speedup\": {speedup:.4},\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \"worst_estimate_gap\": {worst_gap:.6},\n  \
         \"max_estimate_gap\": {MAX_ESTIMATE_GAP}\n}}\n"
    );
    GUARD.write(&out, &json);

    // Guard: the whole point of drawing the cloud once per query.
    GUARD.enforce(speedup);
}

/// A deterministic spiral of candidates around the query center, mixing
/// near-mean (dense cloud) and fringe (sparse cloud) positions — same
/// shape the integrator unit tests use, scaled up.
fn spiral_candidates(n: usize) -> Vec<Vector<2>> {
    (0..n)
        .map(|i| {
            let angle = i as f64 * 0.37;
            let radius = (i % 60) as f64;
            Vector::from([500.0 + radius * angle.cos(), 500.0 + radius * angle.sin()])
        })
        .collect()
}
