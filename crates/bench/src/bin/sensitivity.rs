//! **§V-B.3 parameter sensitivity** — the paper summarizes three sweeps
//! in text (space limits); this binary regenerates all three as candidate
//! count tables:
//!
//! * δ ∈ {5, 10, 25, 50, 100} — "for a small δ value, the combination
//!   generally becomes more effective; when δ is large, RR and BF have
//!   almost the same filtering regions";
//! * θ ∈ {0.001, 0.01, 0.05, 0.1, 0.3} — "change of θ does not influence
//!   the trend … the processing cost does not increase [from θ = 0.1 to
//!   θ = 0.01] due to the exponential feature of the Gaussian";
//! * Σ axis ratio ∈ {1:1, 2:1, 3:1, 6:1, 10:1} — "when the matrix is
//!   close to a unit matrix the difference between the three strategies
//!   becomes small … a thin ellipsoidal shape increases it".
//!
//! ```text
//! cargo run -p gprq-bench --release --bin sensitivity [--n 50747] [--trials 3]
//! ```

use gprq_bench::{road_tree, row, strategy_header, Args};
use gprq_core::{PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet};
use gprq_linalg::Matrix;
use gprq_workloads::{eq34_covariance, random_query_centers, rotated_covariance_2d};

fn main() {
    let args = Args::parse();
    let n = args.get("n", gprq_workloads::ROAD_NETWORK_SIZE);
    let trials = args.get("trials", 3usize);
    let samples = args.get("samples", 50_000usize);
    let seed = args.get("seed", 42u64);

    println!("§V-B.3 sensitivity sweeps: mean #integrations over {trials} trials, n = {n}\n");
    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let centers = random_query_centers(&data, trials, seed ^ 0xABCD);

    let run_row = |label: &str, sigma: Matrix<2>, delta: f64, theta: f64| {
        let mut cells = Vec::new();
        for (_, set) in StrategySet::PAPER_COMBINATIONS {
            let mut total = 0usize;
            for (t, (_, center)) in centers.iter().enumerate() {
                let query = PrqQuery::new(*center, sigma, delta, theta).expect("valid");
                let mut eval = SharedSamplesEvaluator::<2>::new(samples, seed + t as u64);
                let outcome = PrqExecutor::new(set)
                    .execute(&tree, &query, &mut eval)
                    .expect("executes");
                total += outcome.stats.integrations;
            }
            cells.push(format!("{:.0}", total as f64 / trials as f64));
        }
        println!("{}", row(label, &cells));
    };

    println!("--- δ sweep (γ = 10, θ = 0.01) ---");
    println!("{}", strategy_header(&[]));
    for delta in [5.0, 10.0, 25.0, 50.0, 100.0] {
        run_row(&format!("δ={delta}"), eq34_covariance(10.0), delta, 0.01);
    }

    println!("\n--- θ sweep (γ = 10, δ = 25) ---");
    println!("{}", strategy_header(&[]));
    for theta in [0.001, 0.01, 0.05, 0.1, 0.3] {
        run_row(&format!("θ={theta}"), eq34_covariance(10.0), 25.0, theta);
    }

    println!("\n--- Σ shape sweep (area-matched to γ = 10's |Σ| = 900, δ = 25, θ = 0.01) ---");
    println!("{}", strategy_header(&[]));
    for ratio in [1.0f64, 2.0, 3.0, 6.0, 10.0] {
        // Keep |Σ| fixed at 900: σ_major·σ_minor = 30, σ_major/σ_minor = ratio.
        let minor = (30.0 / ratio).sqrt();
        let major = (30.0 * ratio).sqrt();
        let sigma = rotated_covariance_2d(major, minor, 0.5);
        run_row(&format!("{ratio}:1"), sigma, 25.0, 0.01);
    }

    println!("\nexpected shapes: (1) with small δ the strategies differ most; (2) the");
    println!("θ rows change slowly (exponential tails); (3) at 1:1 all methods are");
    println!("nearly equal, at 10:1 the combinations win decisively.");
}
