//! **Table III** — 9-D experiment: mean number of candidates needing
//! integration across ten pseudo-feedback queries, plus the ANS column
//! and the §VI-B anchor quantities (paper §VI, δ = 0.7, θ = 0.4, k = 20).
//!
//! ```text
//! cargo run -p gprq-bench --release --bin table3 [--n 68040] [--trials 10]
//! ```

use gprq_bench::{corel_tree, row, strategy_header, Args};
use gprq_core::{
    OrFilter, PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet, ThetaRegion,
};
use gprq_gaussian::chi::chi_inverse;
use gprq_linalg::Vector;
use gprq_workloads::pseudo_feedback_covariance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let n = args.get("n", gprq_workloads::COREL_SIZE);
    let trials = args.get("trials", 10usize);
    let samples = args.get("samples", 50_000usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 0.7f64);
    let theta = args.get("theta", 0.4f64);
    let k = args.get("k", 20usize);

    println!("Table III reproduction: 9-D candidates, δ = {delta}, θ = {theta}, k = {k}");
    println!("dataset: Corel-like substitute, n = {n}; mean over {trials} trials\n");

    // §VI-B anchors from the chi distribution (exact).
    println!(
        "anchors: r_θ(θ=0.4) = {:.2} (paper 2.32), r_θ(θ=0.01) = {:.2} (paper 4.44)\n",
        chi_inverse(9, 1.0 - 2.0 * 0.4),
        chi_inverse(9, 1.0 - 2.0 * 0.01)
    );

    let (tree, points) = corel_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);

    // Build the pseudo-feedback queries of §VI-A.
    let queries: Vec<PrqQuery<9>> = (0..trials)
        .map(|_| {
            let idx = rng.gen_range(0..points.len());
            let knn = tree.nearest_neighbors(&points[idx], k);
            let samples_vecs: Vec<Vector<9>> = knn.iter().map(|(_, p, _)| **p).collect();
            let sigma = pseudo_feedback_covariance(&samples_vecs);
            PrqQuery::new(points[idx], sigma, delta, theta).expect("valid query")
        })
        .collect();

    println!("{}", strategy_header(&["ANS"]));
    let mut cells = Vec::new();
    let mut ans_mean = 0.0;
    for (ci, (_, set)) in StrategySet::PAPER_COMBINATIONS.iter().enumerate() {
        let mut total = 0usize;
        let mut answers = 0usize;
        for (t, query) in queries.iter().enumerate() {
            let mut eval = SharedSamplesEvaluator::<9>::new(samples, seed + t as u64);
            let outcome = PrqExecutor::new(*set)
                .execute(&tree, query, &mut eval)
                .expect("executes");
            total += outcome.stats.integrations;
            answers += outcome.stats.answers;
        }
        cells.push(format!("{:.0}", total as f64 / trials as f64));
        if ci == 0 {
            ans_mean = answers as f64 / trials as f64;
        }
    }
    cells.push(format!("{ans_mean:.1}"));
    println!("{}", row("9-D", &cells));

    println!(
        "\npaper:      {}",
        row(
            "9-D",
            &[3713.0, 3216.0, 2468.0, 1905.0, 1998.0, 1699.0, 3.9]
                .iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
        )
    );

    // §VI-B extra observations.
    let mut or_in_region_total = 0usize;
    let mut center_prob_total = 0.0;
    for (t, query) in queries.iter().enumerate() {
        // Objects inside the OR filter region alone (paper: 2,620 avg).
        let region = ThetaRegion::for_query(query).expect("θ < 1/2");
        let or = OrFilter::new(query, &region);
        or_in_region_total += tree.iter().filter(|(p, _)| or.passes(p)).count();
        // Qualification probability of the query center itself
        // (paper: 70.0% on average).
        let mut eval = SharedSamplesEvaluator::<9>::new(samples, seed + 1000 + t as u64);
        use gprq_core::ProbabilityEvaluator;
        eval.begin_query(query.gaussian());
        center_prob_total += eval.probability(query.gaussian(), query.center(), delta);
    }
    println!("\n§VI-B observations:");
    println!(
        "  objects inside OR region alone: {:.0}   (paper: 2620)",
        or_in_region_total as f64 / trials as f64
    );
    println!(
        "  qualification probability of the query center: {:.1}%   (paper: 70.0%)",
        100.0 * center_prob_total / trials as f64
    );
    println!("\nexpected shape: all counts ≫ ANS (curse of dimensionality); OR-based");
    println!("combinations prune more than in 2-D because the 9-D isosurfaces are narrow.");
}
