//! **Observability bench guard** — instrumented-vs-uninstrumented query
//! time on the seed workload, written to `BENCH_obs.json` so the
//! overhead of the metrics layer is tracked over time.
//!
//! Both modes run the identical three-phase pipeline over the same tree
//! with the same seeds; the only difference is a `PipelineMetrics`
//! attached to the executor. Passes alternate between the modes and the
//! minimum per-mode wall time is kept, so scheduler noise cancels
//! instead of accumulating into one mode. The binary exits non-zero if
//! instrumentation costs more than the DESIGN.md §10 budget (3 %) — it
//! is a guard, not just a report.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin obs \
//!     [--n 20000] [--trials 5] [--samples 20000] [--passes 3] [--out BENCH_obs.json]
//! cargo run -p gprq-bench --release --bin obs -- --check   # validate committed JSON
//! ```

use std::time::Instant;

use gprq_bench::guard::{Bound, Guard};
use gprq_bench::{road_tree, Args};
use gprq_core::{MonteCarloEvaluator, PipelineMetrics, PrqExecutor, PrqQuery, StrategySet};
use gprq_workloads::{eq34_covariance, random_query_centers};

/// Bump when the JSON layout changes; `--check` rejects older files.
const SCHEMA: u64 = 1;

/// Maximum tolerated instrumented/uninstrumented wall-time ratio.
const BUDGET: f64 = 1.03;

/// The guarded metric: `overhead_ratio` must stay within the budget.
const GUARD: Guard = Guard {
    bench: "obs",
    schema: SCHEMA,
    metric: "overhead_ratio",
    bound: Bound::AtMost(BUDGET),
};

fn main() {
    let args = Args::parse();
    let out = args.get("out", String::from("BENCH_obs.json"));
    if args.flag("check") {
        GUARD.check(&out);
        return;
    }

    let n = args.get("n", 20_000usize);
    let trials = args.get("trials", 5usize);
    let samples = args.get("samples", 20_000usize);
    let passes = args.get("passes", 3usize).max(1);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);

    println!("Observability bench: metrics layer on vs off");
    println!(
        "dataset: road-network substitute, n = {n}; {trials} queries; \
         {samples} samples/object; {passes} alternating passes\n"
    );

    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let centers = random_query_centers(&data, trials, seed ^ 0xABCD);
    let sigma = eq34_covariance(10.0);
    let queries: Vec<PrqQuery<2>> = centers
        .iter()
        .map(|(_, c)| PrqQuery::new(*c, sigma, delta, theta).expect("seed workload is valid"))
        .collect();

    let metrics = PipelineMetrics::new();
    let mut best = [f64::INFINITY; 2]; // [uninstrumented, instrumented]
    let mut answers = [0usize; 2];
    for _ in 0..passes {
        for (mode, slot) in best.iter_mut().enumerate() {
            let started = Instant::now();
            let mut found = 0usize;
            for (t, query) in queries.iter().enumerate() {
                let mut eval = MonteCarloEvaluator::new(samples, seed + t as u64);
                let mut exec = PrqExecutor::new(StrategySet::ALL);
                if mode == 1 {
                    exec = exec.with_metrics(&metrics);
                }
                let outcome = exec
                    .execute(&tree, query, &mut eval)
                    .expect("seed workload executes");
                found += outcome.answers.len();
            }
            *slot = slot.min(started.elapsed().as_secs_f64());
            answers[mode] = found;
        }
    }
    let [plain, instrumented] = best;

    // Same seeds, same pipeline: the metrics layer must not perturb
    // results at all, only (slightly) the clock.
    assert_eq!(
        answers[0], answers[1],
        "instrumentation changed the answer count"
    );

    let ratio = instrumented / plain.max(f64::MIN_POSITIVE);
    println!("uninstrumented (min of {passes}): {plain:.4} s");
    println!("instrumented   (min of {passes}): {instrumented:.4} s");
    println!("overhead ratio: {ratio:.4} (budget {BUDGET})");

    let snapshot = metrics.snapshot();
    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"n\": {n},\n  \"trials\": {trials},\n  \
         \"samples_per_object\": {samples},\n  \"passes\": {passes},\n  \"seed\": {seed},\n  \
         \"delta\": {delta},\n  \"theta\": {theta},\n  \
         \"uninstrumented_secs\": {plain:.6},\n  \"instrumented_secs\": {instrumented:.6},\n  \
         \"overhead_ratio\": {ratio:.6},\n  \"budget\": {BUDGET},\n  \
         \"metrics\": {}\n}}\n",
        indent_json(&snapshot.to_json(), "  "),
    );
    GUARD.write(&out, &json);

    // Guard: the whole point of the phase-span/flush-once design.
    GUARD.enforce(ratio);
}

/// Re-indents the snapshot's own pretty JSON so it nests one level deep.
fn indent_json(json: &str, pad: &str) -> String {
    let mut out = String::with_capacity(json.len() + 64);
    for (i, line) in json.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}
