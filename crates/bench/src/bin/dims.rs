//! **Dimensionality sweep** (extension) — candidate counts and answer
//! sizes across d ∈ {2, 3, 5, 9} on controlled uniform data, making the
//! Fig. 17 "curse of dimensionality" discussion (§VI-B) measurable at
//! the query level: at matched expected-answer scale, the candidate set
//! needing integration balloons with dimension.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin dims [--n 30000] [--samples 30000]
//! ```

use gprq_bench::{row, Args};
use gprq_core::{PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet};
use gprq_gaussian::chi::chi_inverse;
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};
use gprq_workloads::synthetic::uniform;

/// Runs one dimension: uniform data in [0, 100]^D with δ chosen so the
/// δ-ball holds ~50 expected objects — matching the *answer scale*
/// across dimensions isolates the candidate blowup.
fn run_dim<const D: usize>(n: usize, samples: usize, seed: u64) -> [String; 5] {
    let extent = 100.0;
    let pts = uniform::<D>(n, extent, seed);
    // Solve n·V_D(δ)/extent^D = 50 for δ.
    let target = 50.0;
    let ln_v1 = gprq_gaussian::specfun::ln_unit_ball_volume(D);
    let delta = ((target / n as f64).ln() + (D as f64) * extent.ln() - ln_v1)
        .exp()
        .powf(1.0 / D as f64);
    let tree: RTree<D, u32> = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(D),
    );
    // Query at the domain center; anisotropic spread (σ² alternating
    // 9 / 20.25 per axis — an isotropic Σ would let BF decide everything
    // exactly, paper §VI-B's spherical special case), δ = 10, θ = 0.1.
    let cov = Matrix::<D>::from_fn(|i, j| {
        if i == j {
            let s = if i % 2 == 0 {
                0.3 * delta
            } else {
                0.45 * delta
            };
            s * s
        } else {
            0.0
        }
    });
    // Query spread scales with δ so the uncertainty stays comparable
    // to the search range (σ = 0.3·δ on even axes, 0.45·δ on odd).
    let query = PrqQuery::new(Vector::<D>::splat(extent / 2.0), cov, delta, 0.1).expect("valid");
    let mut eval = SharedSamplesEvaluator::<D>::new(samples, seed);
    let outcome = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &query, &mut eval)
        .expect("executes");
    let r_theta = chi_inverse(D, 1.0 - 2.0 * 0.1);
    [
        format!("{:.2}", delta),
        format!("{:.2}", r_theta),
        format!("{}", outcome.stats.phase1_candidates),
        format!("{}", outcome.stats.integrations),
        format!("{}", outcome.stats.answers),
    ]
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 30_000usize);
    let samples = args.get("samples", 30_000usize);
    let seed = args.get("seed", 42u64);

    println!("Dimensionality sweep: n = {n} uniform points, δ matched to ~50 expected neighbors, θ = 0.1\n");
    println!(
        "{}",
        row(
            "d",
            &[
                "δ".into(),
                "r_θ".into(),
                "phase1".into(),
                "integr.".into(),
                "ANS".into()
            ]
        )
    );
    let r2 = run_dim::<2>(n, samples, seed);
    println!("{}", row("2", &r2));
    let r3 = run_dim::<3>(n, samples, seed);
    println!("{}", row("3", &r3));
    let r5 = run_dim::<5>(n, samples, seed);
    println!("{}", row("5", &r5));
    let r9 = run_dim::<9>(n, samples, seed);
    println!("{}", row("9", &r9));

    println!("\nexpected shape: r_θ grows with d (Fig. 17); the candidate-to-answer");
    println!("ratio degrades with d — the §VI-B curse-of-dimensionality effect.");
}
