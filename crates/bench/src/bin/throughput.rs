//! **Batch throughput bench guard** — batched vs one-at-a-time query
//! execution on the paper's 9-D Corel-like workload, written to
//! `BENCH_throughput.json` so the batching win is tracked over time.
//!
//! The batch of shared-Σ pseudo-feedback queries (§VI-A: one covariance
//! estimated from neighborhood feedback, probed at many centers) runs
//! through [`QueryBatch`]: one fused R*-tree pass, one Box–Muller +
//! Cholesky-transform offset draw reused by every query via the
//! Σ-factor cache, one fused Phase-3 block. The baseline executes the
//! identical queries one at a time through [`PrqExecutor`] with the
//! same derived cloud seeds — the documented parity contract — so both
//! modes produce the same answers and the comparison is pure execution
//! strategy. Passes alternate between the modes and the minimum
//! per-mode wall time is kept, so scheduler noise cancels instead of
//! accumulating into one mode.
//!
//! The 9-D draw is the expensive step the cache amortizes (nine
//! normals plus an 81-multiply Cholesky transform per sample — the
//! costs grow with D and D² while grid indexing stays near-linear), so
//! the win needs no threads: on the single-core CI runner the binary
//! exits non-zero if batching stops paying at least the ISSUE-9 floor
//! (2×) — it is a guard, not just a report.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin throughput \
//!     [--n 20000] [--batch 16] [--samples 50000] [--passes 3] [--out BENCH_throughput.json]
//! cargo run -p gprq-bench --release --bin throughput -- --check   # validate committed JSON
//! ```

use std::time::Instant;

use gprq_bench::guard::{Bound, Guard};
use gprq_bench::{corel_tree, Args};
use gprq_core::ext::parallel::ParallelIntegrator;
use gprq_core::{cloud_seed, MonteCarloEvaluator, PrqExecutor, PrqQuery, QueryBatch, StrategySet};
use gprq_obs::Histogram;
use gprq_workloads::pseudo_feedback_covariance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bump when the JSON layout changes; `--check` rejects older files.
const SCHEMA: u64 = 1;

/// Minimum tolerated batched/sequential QPS ratio for a shared-Σ batch.
const MIN_RATIO: f64 = 2.0;

/// The guarded metric: `qps_ratio` must stay at or above the floor.
const GUARD: Guard = Guard {
    bench: "throughput",
    schema: SCHEMA,
    metric: "qps_ratio",
    bound: Bound::AtLeast(MIN_RATIO),
};

fn main() {
    let args = Args::parse();
    let out = args.get("out", String::from("BENCH_throughput.json"));
    if args.flag("check") {
        GUARD.check(&out);
        return;
    }

    let n = args.get("n", 20_000usize);
    let batch_size = args.get("batch", 16usize).max(1);
    let samples = args.get("samples", 50_000usize);
    let passes = args.get("passes", 3usize).max(1);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 0.7f64);
    let theta = args.get("theta", 0.4f64);
    let k = args.get("k", 20usize);

    println!("Batch throughput bench: QueryBatch vs one-at-a-time execution");
    println!(
        "dataset: Corel-like substitute (9-D), n = {n}; batch of {batch_size} shared-Σ \
         pseudo-feedback queries; {samples} samples/query; {passes} alternating passes\n"
    );

    let (tree, points) = corel_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);

    // One pseudo-feedback covariance (§VI-A) shared by the whole batch:
    // the relevance neighborhood of the first probe center.
    let anchor = rng.gen_range(0..points.len());
    let knn = tree.nearest_neighbors(&points[anchor], k);
    let feedback: Vec<_> = knn.iter().map(|(_, p, _)| **p).collect();
    let sigma = pseudo_feedback_covariance(&feedback);
    let queries: Vec<PrqQuery<9>> = (0..batch_size)
        .map(|_| {
            let idx = rng.gen_range(0..points.len());
            PrqQuery::new(points[idx], sigma, delta, theta).expect("feedback Σ is SPD")
        })
        .collect();

    let seq_latency = Histogram::new();
    let batch_latency = Histogram::new();
    let mut best = [f64::INFINITY; 2]; // [sequential, batched]
    let mut ids = [Vec::new(), Vec::new()];
    for _ in 0..passes {
        // Sequential baseline: the batch module's documented solo
        // contract — per-query evaluator seeded from the covariance.
        let executor = PrqExecutor::new(StrategySet::ALL);
        let started = Instant::now();
        let mut found = Vec::new();
        for query in &queries {
            let q_started = Instant::now();
            let mut eval = MonteCarloEvaluator::new(samples, cloud_seed(seed, query.gaussian()));
            let outcome = executor
                .execute(&tree, query, &mut eval)
                .expect("seed workload executes");
            seq_latency.record_duration(q_started.elapsed());
            found.extend(outcome.answers.iter().map(|(_, id)| **id));
        }
        best[0] = best[0].min(started.elapsed().as_secs_f64());
        ids[0] = found;

        // Batched: one fused pass; the Σ-factor cache draws the offset
        // table once and re-centers it for every query in the batch.
        let integrator = ParallelIntegrator::new(samples, seed, 1).expect("non-zero sample budget");
        let mut batch = QueryBatch::new(PrqExecutor::new(StrategySet::ALL), integrator);
        let started = Instant::now();
        let outcomes = batch
            .execute(&tree, &queries)
            .expect("seed workload executes");
        let elapsed = started.elapsed();
        best[1] = best[1].min(elapsed.as_secs_f64());
        // Per-query latency in batch mode is the amortized share.
        let share = elapsed / u32::try_from(batch_size).expect("batch fits in u32");
        for _ in 0..batch_size {
            batch_latency.record_duration(share);
        }
        ids[1] = outcomes
            .iter()
            .flat_map(|o| o.answers.iter().map(|(_, id)| **id))
            .collect();
    }
    let [seq_secs, batch_secs] = best;

    // Parity: same seeds, same derivation — the batch must return the
    // same answer ids in the same order as the one-at-a-time baseline.
    assert_eq!(ids[0], ids[1], "batched answers diverged from sequential");

    let batch_f = batch_size as f64;
    let seq_qps = batch_f / seq_secs.max(f64::MIN_POSITIVE);
    let batch_qps = batch_f / batch_secs.max(f64::MIN_POSITIVE);
    let ratio = batch_qps / seq_qps.max(f64::MIN_POSITIVE);
    println!("sequential (min of {passes}): {seq_secs:.4} s  ({seq_qps:.2} QPS)");
    println!("batched    (min of {passes}): {batch_secs:.4} s  ({batch_qps:.2} QPS)");
    println!("qps ratio: {ratio:.4} (floor {MIN_RATIO})");
    println!(
        "latency p50/p99 ns — sequential: {}/{}  batched: {}/{}",
        seq_latency.quantile(0.5),
        seq_latency.quantile(0.99),
        batch_latency.quantile(0.5),
        batch_latency.quantile(0.99),
    );

    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"n\": {n},\n  \"dims\": 9,\n  \
         \"batch_size\": {batch_size},\n  \
         \"samples_per_query\": {samples},\n  \"passes\": {passes},\n  \"seed\": {seed},\n  \
         \"delta\": {delta},\n  \"theta\": {theta},\n  \"k\": {k},\n  \
         \"sequential_secs\": {seq_secs:.6},\n  \"batched_secs\": {batch_secs:.6},\n  \
         \"sequential_qps\": {seq_qps:.4},\n  \"batched_qps\": {batch_qps:.4},\n  \
         \"qps_ratio\": {ratio:.4},\n  \"min_ratio\": {MIN_RATIO},\n  \
         \"sequential_latency_ns\": {{ \"p50\": {}, \"p99\": {} }},\n  \
         \"batched_latency_ns\": {{ \"p50\": {}, \"p99\": {} }}\n}}\n",
        seq_latency.quantile(0.5),
        seq_latency.quantile(0.99),
        batch_latency.quantile(0.5),
        batch_latency.quantile(0.99),
    );
    GUARD.write(&out, &json);

    // Guard: the whole point of the shared-Σ offset cache.
    GUARD.enforce(ratio);
}
