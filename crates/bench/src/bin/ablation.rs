//! **Ablations** — design-choice measurements beyond the paper's tables
//! (indexed in DESIGN.md §5):
//!
//! 1. U-catalog vs exact inverses: filtering quality and per-query
//!    radius-derivation latency;
//! 2. importance sampling (the paper's integrator) vs uniform-ball Monte
//!    Carlo: error against the quadrature oracle across sample budgets
//!    and dimensions — the paper's claim that importance sampling
//!    "converges quickly … especially for medium-dimensional cases";
//! 3. fresh-per-object vs shared-sample evaluation: Phase-3 time;
//! 4. R*-tree Phase 1 vs linear scan: node accesses and time;
//! 5. the generalized (any-dimension) fringe filter vs paper-faithful
//!    (2-D only) in the 9-D workload;
//! 6. quasi-Monte-Carlo (Halton) vs pseudo-random importance sampling:
//!    convergence at equal sample budgets;
//! 7. uniform-grid Phase 1 vs the R*-tree on the 2-D road data.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin ablation [--n 20000]
//! ```

use gprq_bench::{corel_tree, road_tree, Args};
use gprq_core::{
    BfBounds, BfCatalog, FringeMode, PrqExecutor, PrqQuery, RrCatalog, SharedSamplesEvaluator,
    StrategySet, ThetaRegion,
};
use gprq_gaussian::integrate::{
    importance_sampling_probability, quadrature_probability_2d, uniform_ball_probability,
};
use gprq_gaussian::quasi::quasi_monte_carlo_probability;
use gprq_gaussian::Gaussian;
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::UniformGrid;
use gprq_workloads::{eq34_covariance, pseudo_feedback_covariance, random_query_centers};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 20_000usize);
    let seed = args.get("seed", 42u64);

    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let center = random_query_centers(&data, 1, seed)[0].1;
    let query = PrqQuery::new(center, eq34_covariance(10.0), 25.0, 0.01).expect("valid");

    // ------------------------------------------------------------------
    println!("=== Ablation 1: U-catalog vs exact radius derivation ===");
    let t = Instant::now();
    let rr_cat = RrCatalog::new(2);
    let bf_cat = BfCatalog::new(2);
    println!(
        "catalog construction: {:.1} ms (amortized across all queries)",
        t.elapsed().as_secs_f64() * 1e3
    );
    let t = Instant::now();
    let reps = 1000;
    for _ in 0..reps {
        let _ = ThetaRegion::for_query(&query).unwrap();
        let _ = BfBounds::exact(&query);
    }
    let exact_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        let r = rr_cat.lookup(query.theta()).unwrap();
        let _ = ThetaRegion::with_r_theta(&query, r).unwrap();
        let _ = BfBounds::from_catalog(&query, &bf_cat).unwrap();
    }
    let cat_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("per-query radius derivation: exact {exact_us:.1} µs, catalog {cat_us:.1} µs");
    let mut eval = SharedSamplesEvaluator::<2>::new(100_000, seed);
    let exact_run = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &query, &mut eval)
        .unwrap();
    let cat_run = PrqExecutor::new(StrategySet::ALL)
        .with_rr_catalog(&rr_cat)
        .with_bf_catalog(&bf_cat)
        .execute(&tree, &query, &mut eval)
        .unwrap();
    println!(
        "integrations: exact {} vs catalog {} (conservative lookup cost)",
        exact_run.stats.integrations, cat_run.stats.integrations
    );
    assert_eq!(exact_run.stats.answers, cat_run.stats.answers);

    // ------------------------------------------------------------------
    println!("\n=== Ablation 2: importance sampling vs uniform-ball MC ===");
    let g2 = Gaussian::new(center, eq34_covariance(10.0)).unwrap();
    let target = center + Vector::from([15.0, 8.0]);
    let oracle = quadrature_probability_2d(&g2, &target, 25.0, 64, 128);
    println!("2-D target probability (oracle): {oracle:.5}");
    println!(
        "{:>9} | {:>12} | {:>12}",
        "samples", "IS |err|", "uniform |err|"
    );
    for budget in [1_000usize, 10_000, 100_000] {
        let (mut is_err, mut ub_err) = (0.0, 0.0);
        let reps = 20;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + r);
            is_err += (importance_sampling_probability(&g2, &target, 25.0, budget, &mut rng)
                .unwrap_or(0.0)
                - oracle)
                .abs();
            ub_err +=
                (uniform_ball_probability(&g2, &target, 25.0, budget, &mut rng) - oracle).abs();
        }
        println!(
            "{budget:>9} | {:>12.5} | {:>12.5}",
            is_err / reps as f64,
            ub_err / reps as f64
        );
    }
    // 9-D comparison, where the paper says importance sampling shines.
    let sigma9 = {
        let mut m = Matrix::<9>::identity().scale(0.5);
        m[(0, 0)] = 4.0;
        m
    };
    let g9 = Gaussian::new(Vector::<9>::splat(0.0), sigma9).unwrap();
    let target9 = Vector::<9>::from_fn(|i| if i == 0 { 1.0 } else { 0.2 });
    // High-budget IS as the 9-D reference.
    let mut rng = StdRng::seed_from_u64(seed);
    let ref9 =
        importance_sampling_probability(&g9, &target9, 2.0, 4_000_000, &mut rng).unwrap_or(0.0);
    println!("\n9-D target probability (4M-sample reference): {ref9:.5}");
    println!(
        "{:>9} | {:>12} | {:>12}",
        "samples", "IS |err|", "uniform |err|"
    );
    for budget in [1_000usize, 10_000, 100_000] {
        let (mut is_err, mut ub_err) = (0.0, 0.0);
        let reps = 20;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + 100 + r);
            is_err += (importance_sampling_probability(&g9, &target9, 2.0, budget, &mut rng)
                .unwrap_or(0.0)
                - ref9)
                .abs();
            ub_err += (uniform_ball_probability(&g9, &target9, 2.0, budget, &mut rng) - ref9).abs();
        }
        println!(
            "{budget:>9} | {:>12.5} | {:>12.5}",
            is_err / reps as f64,
            ub_err / reps as f64
        );
    }

    // ------------------------------------------------------------------
    println!("\n=== Ablation 3: fresh vs shared samples (Phase 3 time) ===");
    // `MonteCarloEvaluator` *is* the shared-cloud engine now, so the
    // fresh-per-object baseline lives here, in the ablation, as a local
    // evaluator that redraws its batch for every candidate.
    struct FreshPerObject {
        samples: usize,
        rng: StdRng,
    }
    impl gprq_core::ProbabilityEvaluator<2> for FreshPerObject {
        fn probability(&mut self, g: &Gaussian<2>, center: &Vector<2>, delta: f64) -> f64 {
            importance_sampling_probability(g, center, delta, self.samples, &mut self.rng)
                .unwrap_or(0.0)
        }
    }
    for shared in [false, true] {
        let label = if shared {
            "shared cloud"
        } else {
            "fresh/object"
        };
        let t = Instant::now();
        let stats = if shared {
            let mut eval = SharedSamplesEvaluator::<2>::new(100_000, seed);
            PrqExecutor::new(StrategySet::ALL)
                .execute(&tree, &query, &mut eval)
                .unwrap()
                .stats
        } else {
            let mut eval = FreshPerObject {
                samples: 100_000,
                rng: StdRng::seed_from_u64(seed),
            };
            PrqExecutor::new(StrategySet::ALL)
                .execute(&tree, &query, &mut eval)
                .unwrap()
                .stats
        };
        println!(
            "{label:>13}: {:.2} s total for {} integrations ({} answers)",
            t.elapsed().as_secs_f64(),
            stats.integrations,
            stats.answers
        );
    }

    // ------------------------------------------------------------------
    println!("\n=== Ablation 4: R*-tree Phase 1 vs linear scan ===");
    let region = ThetaRegion::for_query(&query).unwrap();
    let rr = gprq_core::RrFilter::new(&query, &region, FringeMode::PaperFaithful);
    let rect = rr.search_rect();
    let t = Instant::now();
    let mut stats = gprq_rtree::SearchStats::default();
    let hits = tree.query_rect_with_stats(&rect, &mut stats);
    let tree_time = t.elapsed();
    let t = Instant::now();
    let scan_hits = data.iter().filter(|p| rect.contains_point(p)).count();
    let scan_time = t.elapsed();
    println!(
        "R*-tree: {} hits, {} node accesses, {:.1} µs;  linear scan: {} hits, {:.1} µs",
        hits.len(),
        stats.nodes_visited,
        tree_time.as_secs_f64() * 1e6,
        scan_hits,
        scan_time.as_secs_f64() * 1e6
    );

    // ------------------------------------------------------------------
    println!("\n=== Ablation 5: generalized fringe filter in 9-D ===");
    let (tree9, pts9) = corel_tree(args.get("n9", 20_000usize), seed);
    let knn = tree9.nearest_neighbors(&pts9[7], 20);
    let samples: Vec<Vector<9>> = knn.iter().map(|(_, p, _)| **p).collect();
    let q9 = PrqQuery::new(pts9[7], pseudo_feedback_covariance(&samples), 0.7, 0.4).unwrap();
    for (label, mode) in [
        ("paper (off in 9-D)", FringeMode::PaperFaithful),
        ("generalized (on)", FringeMode::AllDimensions),
    ] {
        let mut eval = SharedSamplesEvaluator::<9>::new(50_000, seed);
        let outcome = PrqExecutor::new(StrategySet::RR)
            .with_fringe_mode(mode)
            .execute(&tree9, &q9, &mut eval)
            .unwrap();
        println!(
            "{label:>20}: {} integrations, {} answers",
            outcome.stats.integrations, outcome.stats.answers
        );
    }
    println!("\n(The generalized fringe is our extension: point-to-box distance is");
    println!("cheap in any dimension, so the paper's d = 2 restriction is unnecessary.)");

    // ------------------------------------------------------------------
    println!("\n=== Ablation 6: quasi-Monte-Carlo vs importance sampling ===");
    println!("2-D target probability (oracle): {oracle:.6}");
    println!(
        "{:>9} | {:>12} | {:>12}",
        "samples", "IS |err|", "QMC |err|"
    );
    for budget in [1_000usize, 10_000, 100_000] {
        let reps = 20;
        let mut is_err = 0.0;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + 300 + r);
            is_err += (importance_sampling_probability(&g2, &target, 25.0, budget, &mut rng)
                .unwrap_or(0.0)
                - oracle)
                .abs();
        }
        // QMC is deterministic: one evaluation.
        let qmc_err = (quasi_monte_carlo_probability(&g2, &target, 25.0, budget) - oracle).abs();
        println!(
            "{budget:>9} | {:>12.6} | {:>12.6}",
            is_err / reps as f64,
            qmc_err
        );
    }

    // ------------------------------------------------------------------
    println!("\n=== Ablation 7: uniform-grid Phase 1 vs R*-tree ===");
    let grid = UniformGrid::build(tree.iter().map(|(p, d)| (*p, *d)).collect(), 64);
    let t = Instant::now();
    let mut gstats = gprq_rtree::SearchStats::default();
    let ghits = grid.query_rect_with_stats(&rect, &mut gstats);
    let grid_time = t.elapsed();
    println!(
        "grid(64²):  {} hits, {} cells visited, {:.1} µs",
        ghits.len(),
        gstats.nodes_visited,
        grid_time.as_secs_f64() * 1e6
    );
    println!(
        "R*-tree:    {} hits, {} node accesses, {:.1} µs",
        hits.len(),
        stats.nodes_visited,
        tree_time.as_secs_f64() * 1e6
    );
    println!("(In 9-D a 64-per-axis grid would need 64⁹ ≈ 1.8·10¹⁶ cells — the");
    println!("R-tree family is the only structure of the two that scales in d.)");
}
