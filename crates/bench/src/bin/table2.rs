//! **Table II** — number of candidate objects requiring numerical
//! integration, for γ ∈ {1, 10, 100} across the six combinations, plus
//! the answer-set size (ANS column). Paper §V-B.1, δ = 25, θ = 0.01.
//!
//! Candidate counts are determined purely by the filters, so this binary
//! is fast regardless of sample counts; the ANS column uses a
//! shared-sample evaluator.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin table2 [--n 50747] [--trials 5]
//! ```

use gprq_bench::{road_tree, row, strategy_header, Args};
use gprq_core::{PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet};
use gprq_workloads::{eq34_covariance, random_query_centers};

fn main() {
    let args = Args::parse();
    let n = args.get("n", gprq_workloads::ROAD_NETWORK_SIZE);
    let trials = args.get("trials", 5usize);
    let samples = args.get("samples", 100_000usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);

    println!("Table II reproduction: #candidates needing integration, δ = {delta}, θ = {theta}");
    println!("dataset: road-network substitute, n = {n}; mean over {trials} trials\n");

    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let centers = random_query_centers(&data, trials, seed ^ 0xABCD);

    println!("{}", strategy_header(&["ANS"]));
    for gamma in [1.0, 10.0, 100.0] {
        let sigma = eq34_covariance(gamma);
        let mut cells = Vec::new();
        let mut ans_mean = 0.0;
        for (ci, (_, set)) in StrategySet::PAPER_COMBINATIONS.iter().enumerate() {
            let mut total = 0usize;
            let mut answers = 0usize;
            for (t, (_, center)) in centers.iter().enumerate() {
                let query = PrqQuery::new(*center, sigma, delta, theta).expect("valid");
                let mut eval = SharedSamplesEvaluator::<2>::new(samples, seed + t as u64);
                let outcome = PrqExecutor::new(*set)
                    .execute(&tree, &query, &mut eval)
                    .expect("executes");
                total += outcome.stats.integrations;
                answers += outcome.stats.answers;
            }
            cells.push(format!("{:.0}", total as f64 / trials as f64));
            if ci == 0 {
                ans_mean = answers as f64 / trials as f64;
            }
        }
        cells.push(format!("{ans_mean:.0}"));
        println!("{}", row(&format!("γ={gamma}"), &cells));
    }

    println!("\npaper (Long Beach TIGER, 1 query):");
    println!(
        "{}",
        row(
            "γ=1",
            &fmt(&[357.0, 302.0, 297.0, 335.0, 285.0, 281.0, 295.0])
        )
    );
    println!(
        "{}",
        row(
            "γ=10",
            &fmt(&[792.0, 683.0, 636.0, 682.0, 569.0, 558.0, 546.0])
        )
    );
    println!(
        "{}",
        row(
            "γ=100",
            &fmt(&[2998.0, 2599.0, 2346.0, 2270.0, 1832.0, 1788.0, 1566.0])
        )
    );
    println!("\nexpected shape: counts fall left→right; ALL is the minimum; counts");
    println!("grow roughly with the θ-region area (∝ γ); ANS close to the ALL column.");
}

fn fmt(xs: &[f64]) -> Vec<String> {
    xs.iter().map(|x| format!("{x:.0}")).collect()
}
