//! **Figures 13–16** — geometry of the integration regions for RR, OR,
//! BF, and their intersection (ALL), at γ ∈ {1, 10, 100}
//! (paper §V-B.1–2, δ = 25, θ = 0.01).
//!
//! For each strategy the binary prints the defining region parameters
//! (the quantities annotated in the paper's figures: θ-box half-widths,
//! oblique half-widths, BF radii) and a Monte-Carlo estimate of each
//! region's **area** — the paper's proxy for query cost under uniform
//! data ("if we assume the target objects are uniformly distributed,
//! their areas correspond to the query processing costs").
//!
//! ```text
//! cargo run -p gprq-bench --release --bin fig13_16 [--area-samples 2000000]
//! ```

use gprq_bench::Args;
use gprq_core::{BfBounds, FringeMode, OrFilter, PrqQuery, RejectBound, RrFilter, ThetaRegion};
use gprq_linalg::Vector;
use gprq_workloads::eq34_covariance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let area_samples = args.get("area-samples", 2_000_000usize);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);
    let seed = args.get("seed", 42u64);

    println!("Figures 13–16 reproduction: integration-region geometry, δ = {delta}, θ = {theta}\n");

    for gamma in [1.0, 10.0, 100.0] {
        let fig = match gamma as u32 {
            1 => "Fig. 15",
            10 => "Figs. 13–14",
            _ => "Fig. 16",
        };
        println!("=== γ = {gamma} ({fig}) ===");
        let query = PrqQuery::new(
            Vector::from([0.0, 0.0]),
            eq34_covariance(gamma),
            delta,
            theta,
        )
        .expect("valid");
        let region = ThetaRegion::for_query(&query).expect("θ < 1/2");
        let rr = RrFilter::new(&query, &region, FringeMode::PaperFaithful);
        let or = OrFilter::new(&query, &region);
        let bf = BfBounds::exact(&query);

        let w = region.box_half_widths();
        println!(
            "  RR: θ-box half-widths ({:.1}, {:.1}); search box ({:.1}, {:.1})",
            w[0],
            w[1],
            w[0] + delta,
            w[1] + delta
        );
        let ow = or.half_widths();
        println!(
            "  OR: oblique half-widths along ellipse axes ({:.1}, {:.1})",
            ow[0], ow[1]
        );
        let alpha_par = match bf.reject {
            RejectBound::Radius(a) => a,
            RejectBound::RejectAll => f64::NAN,
        };
        match bf.accept {
            Some(a) => {
                println!("  BF: reject radius α∥ = {alpha_par:.1}, accept radius α⊥ = {a:.1}")
            }
            None => println!("  BF: reject radius α∥ = {alpha_par:.1}, no accept hole"),
        }

        // Monte-Carlo areas over a box covering all regions.
        let cover = (w[0] + delta).max(alpha_par) * 1.05;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = [0usize; 4]; // RR, OR, BF annulus, ALL
        for _ in 0..area_samples {
            let p = Vector::from([
                (rng.gen::<f64>() * 2.0 - 1.0) * cover,
                (rng.gen::<f64>() * 2.0 - 1.0) * cover,
            ]);
            let in_rr = rr.search_rect().contains_point(&p) && rr.passes(&p);
            let in_or = or.passes(&p);
            let dist = p.norm();
            let in_bf = dist <= alpha_par && bf.accept.map_or(true, |a| dist > a);
            if in_rr {
                counts[0] += 1;
            }
            if in_or {
                counts[1] += 1;
            }
            if in_bf {
                counts[2] += 1;
            }
            if in_rr && in_or && in_bf {
                counts[3] += 1;
            }
        }
        let box_area = (2.0 * cover) * (2.0 * cover);
        let area = |c: usize| c as f64 / area_samples as f64 * box_area;
        println!(
            "  integration-region areas: RR {:.0}, OR {:.0}, BF {:.0}, ALL (intersection) {:.0}",
            area(counts[0]),
            area(counts[1]),
            area(counts[2]),
            area(counts[3])
        );
        let reduction = 100.0 * (1.0 - counts[3] as f64 / counts[0].max(1) as f64);
        println!("  ALL shrinks the RR region by {reduction:.0}%\n");
    }

    println!("expected shape (paper §V-B.2): combining strategies helps little at");
    println!("γ = 1 but strongly at γ = 100, where the regions differ most.");
}
