//! **Figure 17** — probability of existence within radius `r` of the
//! distribution center for the normalized Gaussian, d ∈ {2, 3, 5, 9, 15}
//! (paper §VI-B: the curse-of-dimensionality picture).
//!
//! The paper plots Monte-Carlo integrations; we print the exact chi-CDF
//! curves (and verify the paper's two quoted anchor points).
//!
//! ```text
//! cargo run -p gprq-bench --release --bin fig17
//! ```

use gprq_bench::Args;
use gprq_gaussian::chi::{chi_ball_probability, chi_inverse};

fn main() {
    let args = Args::parse();
    let r_max = args.get("rmax", 6.0f64);
    let steps = args.get("steps", 24usize);
    let dims = [2usize, 3, 5, 9, 15];

    println!("Figure 17 reproduction: P(‖x‖ ≤ r) for the standard d-D Gaussian\n");
    print!("{:>6}", "r");
    for d in dims {
        print!("{:>9}", format!("d={d}"));
    }
    println!();
    for i in 0..=steps {
        let r = r_max * i as f64 / steps as f64;
        print!("{r:>6.2}");
        for d in dims {
            print!("{:>9.4}", chi_ball_probability(d, r));
        }
        println!();
    }

    println!("\npaper anchors:");
    println!(
        "  d=2,  r=1: {:.1}%  (paper: 39%)",
        100.0 * chi_ball_probability(2, 1.0)
    );
    println!(
        "  d=9,  r=2: {:.1}%  (paper: 9%)",
        100.0 * chi_ball_probability(9, 2.0)
    );
    println!(
        "  r_θ for 98% mass: d=2 → {:.2} (paper 2.79), d=9 → {:.2} (paper 4.44)",
        chi_inverse(2, 0.98),
        chi_inverse(9, 0.98)
    );
    println!(
        "  r_θ for 20% mass, d=9 → {:.2} (paper 2.32)",
        chi_inverse(9, 0.20)
    );
    println!("\nexpected shape: curves shift right as d grows — the same probability");
    println!("level requires a larger search radius in higher dimensions.");
}
