//! **Scaling sweep** (extension) — candidate counts and query time as
//! the dataset grows, plus cost-model predictions vs measurements.
//!
//! The paper fixes n = 50,747; this binary sweeps n to confirm the
//! filtering behaviour is density-linear (candidates ∝ n at fixed
//! region geometry) and that Phase-1 index cost stays logarithmic.
//!
//! ```text
//! cargo run -p gprq-bench --release --bin scaling [--trials 3] [--samples 20000]
//! ```

use gprq_bench::{road_tree, row, Args};
use gprq_core::cost::{expected_integrations, region_volumes, DensityEstimate};
use gprq_core::{PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet};
use gprq_workloads::{eq34_covariance, random_query_centers};

fn main() {
    let args = Args::parse();
    let trials = args.get("trials", 3usize);
    let samples = args.get("samples", 50_000usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);
    let gamma = args.get("gamma", 10.0f64);

    println!("Scaling sweep: γ = {gamma}, δ = {delta}, θ = {theta}, {trials} trials/point\n");
    println!(
        "{}",
        row(
            "n",
            &[
                "ALL cand".into(),
                "predicted".into(),
                "node acc".into(),
                "ms/query".into()
            ]
        )
    );

    for n in [6_343usize, 12_686, 25_373, 50_747, 101_494] {
        let tree = road_tree(n, seed);
        let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
        let centers = random_query_centers(&data, trials, seed ^ 0xBEEF);
        let sigma = eq34_covariance(gamma);

        let mut integ = 0usize;
        let mut accesses = 0usize;
        let mut ms = 0.0;
        let mut predicted = 0.0;
        for (t, (_, center)) in centers.iter().enumerate() {
            let query = PrqQuery::new(*center, sigma, delta, theta).expect("valid");
            // Cost-model prediction with local density probed via the tree.
            let probe_radius = 100.0;
            let local = tree.query_ball(center, probe_radius).len();
            let density = DensityEstimate::from_probe::<2>(local, probe_radius);
            let volumes = region_volumes(&query, seed + t as u64).expect("θ < 1/2");
            predicted += expected_integrations(&volumes, &density, StrategySet::ALL);

            let mut eval = SharedSamplesEvaluator::<2>::new(samples, seed + t as u64);
            let outcome = PrqExecutor::new(StrategySet::ALL)
                .execute(&tree, &query, &mut eval)
                .expect("executes");
            integ += outcome.stats.integrations;
            accesses += outcome.stats.node_accesses;
            ms += outcome.stats.total_time().as_secs_f64() * 1e3;
        }
        let tf = trials as f64;
        println!(
            "{}",
            row(
                &format!("{n}"),
                &[
                    format!("{:.0}", integ as f64 / tf),
                    format!("{:.0}", predicted / tf),
                    format!("{:.0}", accesses as f64 / tf),
                    format!("{:.1}", ms / tf),
                ]
            )
        );
    }

    println!("\nexpected shape: candidates and time scale ~linearly with n (density");
    println!("doubles → candidates double); node accesses grow ~logarithmically;");
    println!("the cost-model prediction tracks the measured ALL column.");
}
