//! **Table I** — query processing time (seconds) for γ ∈ {1, 10, 100}
//! across the six strategy combinations (paper §V-B.1, δ = 25, θ = 0.01).
//!
//! ```text
//! cargo run -p gprq-bench --release --bin table1 [--n 50747] [--trials 5] [--samples 100000]
//! ```
//!
//! Defaults use the paper's full dataset and 5 trials but 20 000
//! Monte-Carlo samples per integration (the paper used 100 000 on a
//! 2 GHz Pentium at ~0.05 s each); pass `--samples 100000` for the
//! paper-exact configuration. Absolute times differ from 2009 hardware;
//! the comparison *across columns* is the result.

use gprq_bench::{road_tree, row, strategy_header, Args};
use gprq_core::{MonteCarloEvaluator, PrqExecutor, PrqQuery, StrategySet};
use gprq_workloads::{eq34_covariance, random_query_centers};

fn main() {
    let args = Args::parse();
    let n = args.get("n", gprq_workloads::ROAD_NETWORK_SIZE);
    let trials = args.get("trials", 5usize);
    let samples = args.get("samples", 20_000usize);
    let seed = args.get("seed", 42u64);
    let delta = args.get("delta", 25.0f64);
    let theta = args.get("theta", 0.01f64);

    println!("Table I reproduction: query time (s), δ = {delta}, θ = {theta}");
    println!("dataset: road-network substitute, n = {n}; {trials} trials; {samples} MC samples\n");

    let tree = road_tree(n, seed);
    let data: Vec<_> = tree.iter().map(|(p, _)| *p).collect();
    let centers = random_query_centers(&data, trials, seed ^ 0xABCD);

    println!("{}", strategy_header(&[]));
    for gamma in [1.0, 10.0, 100.0] {
        let sigma = eq34_covariance(gamma);
        let mut cells = Vec::new();
        for (_, set) in StrategySet::PAPER_COMBINATIONS {
            let mut total = 0.0f64;
            for (t, (_, center)) in centers.iter().enumerate() {
                let query = PrqQuery::new(*center, sigma, delta, theta).expect("valid");
                let mut eval = MonteCarloEvaluator::new(samples, seed + t as u64);
                let outcome = PrqExecutor::new(set)
                    .execute(&tree, &query, &mut eval)
                    .expect("executes");
                total += outcome.stats.total_time().as_secs_f64();
            }
            cells.push(format!("{:.3}", total / trials as f64));
        }
        println!("{}", row(&format!("γ={gamma}"), &cells));
    }

    println!("\npaper (2 GHz Pentium, 100k samples):");
    println!(
        "{}",
        row("γ=1", &fmt(&[18.6, 15.9, 15.7, 17.7, 15.1, 14.8]))
    );
    println!(
        "{}",
        row("γ=10", &fmt(&[41.2, 35.9, 33.5, 35.6, 29.8, 29.4]))
    );
    println!(
        "{}",
        row("γ=100", &fmt(&[155.3, 136.7, 123.5, 119.3, 97.3, 93.7]))
    );
    println!("\nexpected shape: time decreases left→right within each row; the");
    println!("combination gain grows with γ (ALL ≈ 0.60×RR at γ=100 vs 0.80× at γ=1).");
}

fn fmt(xs: &[f64]) -> Vec<String> {
    xs.iter().map(|x| format!("{x:.1}")).collect()
}
