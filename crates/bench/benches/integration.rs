//! Micro-benchmarks of the Phase-3 integrators — the cost that the
//! paper's whole contribution exists to avoid paying per candidate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gprq_gaussian::cloud::{CloudGrid, SampleCloud};
use gprq_gaussian::integrate::{importance_sampling_probability, quadrature_probability_2d};
use gprq_gaussian::Gaussian;
use gprq_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;

fn gaussian2() -> Gaussian<2> {
    let s3 = 3.0f64.sqrt();
    Gaussian::new(
        Vector::from([500.0, 500.0]),
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0),
    )
    .unwrap()
}

fn gaussian9() -> Gaussian<9> {
    let mut m = Matrix::<9>::identity();
    for i in 0..9 {
        m[(i, i)] = 0.4 + 0.2 * i as f64;
    }
    Gaussian::new(Vector::<9>::splat(0.0), m).unwrap()
}

fn bench_importance_sampling(c: &mut Criterion) {
    let g = gaussian2();
    let target = Vector::from([515.0, 508.0]);
    let mut group = c.benchmark_group("integrate/importance_sampling_2d");
    for &samples in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| importance_sampling_probability(&g, black_box(&target), 25.0, n, &mut rng));
        });
    }
    group.finish();

    let g9 = gaussian9();
    let t9 = Vector::<9>::splat(0.3);
    let mut group = c.benchmark_group("integrate/importance_sampling_9d");
    for &samples in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| importance_sampling_probability(&g9, black_box(&t9), 2.0, n, &mut rng));
        });
    }
    group.finish();
}

fn bench_shared_samples(c: &mut Criterion) {
    let g = gaussian2();
    let mut rng = StdRng::seed_from_u64(2);
    let budget = NonZeroUsize::new(100_000).expect("nonzero");
    let cloud = SampleCloud::draw(&g, budget, &mut rng);
    let grid = CloudGrid::build(&cloud);
    let target = Vector::from([515.0, 508.0]);
    c.bench_function("integrate/shared_cloud_linear_probe_100k", |b| {
        b.iter(|| cloud.probability(black_box(&target), 25.0))
    });
    c.bench_function("integrate/shared_cloud_grid_probe_100k", |b| {
        b.iter(|| grid.probability(black_box(&target), 25.0))
    });
}

fn bench_quadrature(c: &mut Criterion) {
    let g = gaussian2();
    let target = Vector::from([515.0, 508.0]);
    c.bench_function("integrate/quadrature_64x128", |b| {
        b.iter(|| quadrature_probability_2d(&g, black_box(&target), 25.0, 64, 128))
    });
}

fn bench_quasi_monte_carlo(c: &mut Criterion) {
    use gprq_gaussian::quasi::quasi_monte_carlo_probability;
    let g = gaussian2();
    let target = Vector::from([515.0, 508.0]);
    let mut group = c.benchmark_group("integrate/qmc_2d");
    for &samples in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| quasi_monte_carlo_probability(&g, black_box(&target), 25.0, n));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_importance_sampling,
    bench_shared_samples,
    bench_quadrature,
    bench_quasi_monte_carlo
);
criterion_main!(benches);
