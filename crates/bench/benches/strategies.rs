//! Micro-benchmarks of the filter predicates and full strategy
//! executions (with a cheap evaluator, to expose Phase 1+2 costs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gprq_bench::road_tree;
use gprq_core::{
    BfBounds, FringeMode, MonteCarloEvaluator, OrFilter, PrqExecutor, PrqQuery, RrFilter,
    StrategySet, ThetaRegion,
};
use gprq_linalg::Vector;
use gprq_workloads::eq34_covariance;

fn query() -> PrqQuery<2> {
    PrqQuery::new(
        Vector::from([500.0, 500.0]),
        eq34_covariance(10.0),
        25.0,
        0.01,
    )
    .unwrap()
}

fn bench_preparation(c: &mut Criterion) {
    let q = query();
    c.bench_function("prepare/theta_region", |b| {
        b.iter(|| ThetaRegion::for_query(black_box(&q)).unwrap())
    });
    c.bench_function("prepare/bf_bounds_exact", |b| {
        b.iter(|| BfBounds::exact(black_box(&q)))
    });
}

fn bench_filter_predicates(c: &mut Criterion) {
    let q = query();
    let region = ThetaRegion::for_query(&q).unwrap();
    let rr = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
    let or = OrFilter::new(&q, &region);
    let bf = BfBounds::exact(&q);
    let probe = Vector::from([530.0, 520.0]);
    c.bench_function("filter/rr_fringe", |b| {
        b.iter(|| rr.passes(black_box(&probe)))
    });
    c.bench_function("filter/or_oblique", |b| {
        b.iter(|| or.passes(black_box(&probe)))
    });
    c.bench_function("filter/bf_classify", |b| {
        b.iter(|| bf.classify(black_box(&probe)))
    });
}

fn bench_full_queries(c: &mut Criterion) {
    let tree = road_tree(50_747, 7);
    let q = query();
    let mut group = c.benchmark_group("execute/paper_query_1k_samples");
    group.sample_size(10);
    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut eval = MonteCarloEvaluator::new(1_000, 3);
                PrqExecutor::new(set)
                    .execute(&tree, black_box(&q), &mut eval)
                    .unwrap()
                    .stats
                    .integrations
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preparation,
    bench_filter_predicates,
    bench_full_queries
);
criterion_main!(benches);
