//! Micro-benchmarks of the linear-algebra kernels behind query
//! preparation: eigendecomposition, Cholesky, and the Mahalanobis form.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gprq_linalg::{Matrix, Vector};

fn sigma2() -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
}

fn sigma9() -> Matrix<9> {
    // A well-conditioned anisotropic 9-D covariance.
    let mut m = Matrix::<9>::identity();
    for i in 0..9 {
        m[(i, i)] = 0.5 + i as f64 * 0.35;
        for j in (i + 1)..9 {
            let c = 0.05 / (1.0 + (i as f64 - j as f64).abs());
            m[(i, j)] = c;
            m[(j, i)] = c;
        }
    }
    m
}

fn bench_eigen(c: &mut Criterion) {
    let m2 = sigma2();
    let m9 = sigma9();
    c.bench_function("eigen/jacobi_2d", |b| {
        b.iter(|| black_box(m2).symmetric_eigen().unwrap())
    });
    c.bench_function("eigen/jacobi_9d", |b| {
        b.iter(|| black_box(m9).symmetric_eigen().unwrap())
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let m2 = sigma2();
    let m9 = sigma9();
    c.bench_function("cholesky/factor_2d", |b| {
        b.iter(|| black_box(m2).cholesky().unwrap())
    });
    c.bench_function("cholesky/factor_9d", |b| {
        b.iter(|| black_box(m9).cholesky().unwrap())
    });
    let ch9 = m9.cholesky().unwrap();
    let v9 = Vector::<9>::from_fn(|i| i as f64 * 0.3 - 1.0);
    c.bench_function("cholesky/mahalanobis_9d", |b| {
        b.iter(|| ch9.mahalanobis_squared(black_box(&v9)))
    });
}

fn bench_quadratic_form(c: &mut Criterion) {
    let inv = sigma2().cholesky().unwrap().inverse();
    let v = Vector::from([3.0, -2.0]);
    c.bench_function("matrix/quadratic_form_2d", |b| {
        b.iter(|| inv.quadratic_form(black_box(&v)))
    });
}

criterion_group!(benches, bench_eigen, bench_cholesky, bench_quadratic_form);
criterion_main!(benches);
