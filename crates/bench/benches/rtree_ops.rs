//! Micro-benchmarks of the R*-tree substrate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gprq_linalg::Vector;
use gprq_rtree::{RStarParams, RTree, Rect};
use gprq_workloads::road_network_2d;

fn dataset(n: usize) -> Vec<(Vector<2>, u32)> {
    road_network_2d(n, 7)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u32))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/build");
    group.sample_size(10);
    for &n in &[10_000usize, 50_747] {
        let data = dataset(n);
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &data, |b, d| {
            b.iter(|| RTree::bulk_load(d.clone(), RStarParams::paper_default(2)))
        });
    }
    let data = dataset(10_000);
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = RTree::with_params(RStarParams::paper_default(2));
            for (p, id) in &data {
                t.insert(*p, *id);
            }
            t
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let tree = RTree::bulk_load(dataset(50_747), RStarParams::paper_default(2));
    let center = Vector::from([500.0, 500.0]);
    let rect = Rect::centered(&center, &Vector::from([48.4, 40.3])); // the γ=10 search box
    c.bench_function("rtree/range_query_gamma10_box", |b| {
        b.iter(|| tree.query_rect(black_box(&rect)))
    });
    c.bench_function("rtree/ball_query_r50", |b| {
        b.iter(|| tree.query_ball(black_box(&center), 50.0))
    });
    c.bench_function("rtree/knn_20", |b| {
        b.iter(|| tree.nearest_neighbors(black_box(&center), 20))
    });
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
