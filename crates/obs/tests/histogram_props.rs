//! Property-based invariants for the log-bucketed histogram
//! (deterministic under the offline proptest shim's per-test seeds).

use gprq_obs::{Histogram, BUCKET_COUNT};
use proptest::prelude::*;

fn filled(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn counts(h: &Histogram) -> [u64; BUCKET_COUNT] {
    h.bucket_counts()
}

proptest! {
    #[test]
    fn total_count_equals_bucket_sum(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        let h = filled(&values);
        let bucket_total: u64 = counts(&h).iter().sum();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(bucket_total, h.count());
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let ab = filled(&a);
        ab.merge(&filled(&b));
        let ba = filled(&b);
        ba.merge(&filled(&a));
        prop_assert_eq!(counts(&ab), counts(&ba));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum(), ba.sum());
        prop_assert_eq!(ab.max_value(), ba.max_value());
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        // (a ⊕ b) ⊕ c
        let left = filled(&a);
        left.merge(&filled(&b));
        left.merge(&filled(&c));
        // a ⊕ (b ⊕ c)
        let bc = filled(&b);
        bc.merge(&filled(&c));
        let right = filled(&a);
        right.merge(&bc);
        prop_assert_eq!(counts(&left), counts(&right));
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.max_value(), right.max_value());
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0u64..u64::MAX, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = filled(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        // Quantiles are conservative: never below the true minimum's
        // bucket floor, never above the recorded maximum's bucket cap.
        let cap = Histogram::bucket_upper_bound(Histogram::bucket_index(h.max_value()));
        prop_assert!(h.quantile(1.0) <= cap);
        prop_assert!(h.quantile(1.0) >= h.max_value().min(cap));
    }

    #[test]
    fn recording_hostile_floats_never_panics(
        finite in proptest::collection::vec(-1.0e300f64..1.0e300, 0..50),
    ) {
        let h = Histogram::new();
        for v in &finite {
            h.record_f64(*v);
        }
        // The non-finite and boundary cases, explicitly.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN, f64::MAX] {
            h.record_f64(v);
        }
        // Negative-duration analogue: u64 has no negative values, so the
        // f64 entry point is the negative path; zero duration is the floor.
        h.record_duration(std::time::Duration::ZERO);
        prop_assert_eq!(h.count(), finite.len() as u64 + 7);
        let bucket_total: u64 = counts(&h).iter().sum();
        prop_assert_eq!(bucket_total, h.count());
    }

    #[test]
    fn every_value_lands_in_its_bucket(v in 0u64..u64::MAX) {
        let idx = Histogram::bucket_index(v);
        prop_assert!(idx < BUCKET_COUNT);
        let upper = Histogram::bucket_upper_bound(idx);
        prop_assert!(v <= upper);
        if idx > 0 {
            // Lower edge: the previous bucket's cap is strictly below v.
            prop_assert!(Histogram::bucket_upper_bound(idx - 1) < v);
        }
    }
}
