//! RAII phase timing.

use crate::clock::Clock;
use crate::histogram::Histogram;

/// An RAII wall-clock span: started against a [`Clock`], it records its
/// elapsed nanoseconds into a [`Histogram`] exactly once — either when
/// [`PhaseSpan::finish`] is called or when the span is dropped (early
/// return, `?`, panic unwind), so a phase duration is never lost on an
/// abnormal exit path.
///
/// Elapsed time is computed with saturating subtraction: a misbehaving
/// clock can produce a zero-length span but never a panic.
#[derive(Debug)]
pub struct PhaseSpan<'a> {
    clock: &'a dyn Clock,
    target: &'a Histogram,
    start: u64,
    armed: bool,
}

impl<'a> PhaseSpan<'a> {
    /// Starts a span now; it records into `target` when finished or
    /// dropped.
    pub fn start(clock: &'a dyn Clock, target: &'a Histogram) -> Self {
        PhaseSpan {
            clock,
            target,
            start: clock.now_nanos(),
            armed: true,
        }
    }

    /// Nanoseconds elapsed so far (without recording).
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start)
    }

    /// Ends the span, records the duration, and returns it in
    /// nanoseconds. The subsequent drop is a no-op.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_nanos();
        self.target.record(elapsed);
        self.armed = false;
        elapsed
    }

    /// Ends the span without recording anything — for abandoned phases
    /// whose partial duration would pollute the distribution.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.target.record(self.elapsed_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn finish_records_exact_elapsed() {
        let clock = MockClock::new();
        let hist = Histogram::new();
        let span = PhaseSpan::start(&clock, &hist);
        clock.advance(1_234);
        assert_eq!(span.elapsed_nanos(), 1_234);
        assert_eq!(span.finish(), 1_234);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 1_234);
    }

    #[test]
    fn drop_records_once() {
        let clock = MockClock::new();
        let hist = Histogram::new();
        {
            let _span = PhaseSpan::start(&clock, &hist);
            clock.advance(500);
        } // drop records
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 500);
    }

    #[test]
    fn finish_then_drop_does_not_double_record() {
        let clock = MockClock::new();
        let hist = Histogram::new();
        let span = PhaseSpan::start(&clock, &hist);
        clock.advance(10);
        span.finish();
        assert_eq!(hist.count(), 1, "drop after finish must not re-record");
    }

    #[test]
    fn cancel_records_nothing() {
        let clock = MockClock::new();
        let hist = Histogram::new();
        let span = PhaseSpan::start(&clock, &hist);
        clock.advance(10);
        span.cancel();
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn spans_survive_panic_unwind() {
        let clock = MockClock::new();
        let hist = Histogram::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = PhaseSpan::start(&clock, &hist);
            clock.advance(77);
            panic!("phase blew up");
        }));
        assert!(result.is_err());
        assert_eq!(hist.count(), 1, "unwind path still records the span");
        assert_eq!(hist.sum(), 77);
    }
}
