//! Point-in-time metric snapshots with a hand-rolled JSON renderer.

use std::fmt;

/// Scalar summary of a histogram at snapshot time.
///
/// Quantiles carry the conservative bucket-upper-bound semantics of
/// [`Histogram::quantile`](crate::Histogram::quantile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Conservative median estimate.
    pub p50: u64,
    /// Conservative 90th-percentile estimate.
    pub p90: u64,
    /// Conservative 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of recorded values (`NaN`-free: `0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The value of one snapshotted instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

/// One named instrument in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The metric's registered name.
    pub name: &'static str,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a [`Registry`](crate::Registry), ordered by
/// metric name.
///
/// The JSON renderer is hand-rolled in the same style as the bench
/// bins' output — metric names are static identifiers (no escaping
/// needed) and every value is an integer, so the full JSON grammar
/// would be dead weight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    pub(crate) fn from_entries(entries: Vec<SnapshotEntry>) -> Self {
        MetricsSnapshot { entries }
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &SnapshotEntry> {
        self.entries.iter()
    }

    /// Number of snapshotted instruments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no instruments.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// The counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.find(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram summary registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.find(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All `(name, value)` counter pairs, in name order — the shape the
    /// determinism parity tests compare across thread counts.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.entries
            .iter()
            .filter_map(|e| match e.value {
                MetricValue::Counter(v) => Some((e.name, v)),
                _ => None,
            })
            .collect()
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections, names sorted within each.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_section(
            &mut out,
            self.entries.iter().filter_map(|e| match e.value {
                MetricValue::Counter(v) => Some(format!("\"{}\": {}", e.name, v)),
                _ => None,
            }),
        );
        out.push_str("},\n  \"gauges\": {");
        push_section(
            &mut out,
            self.entries.iter().filter_map(|e| match e.value {
                MetricValue::Gauge(v) => Some(format!("\"{}\": {}", e.name, v)),
                _ => None,
            }),
        );
        out.push_str("},\n  \"histograms\": {");
        push_section(&mut out, self.entries.iter().filter_map(|e| match e.value {
            MetricValue::Histogram(h) => Some(format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                e.name, h.count, h.sum, h.max, h.p50, h.p90, h.p99
            )),
            _ => None,
        }));
        out.push_str("}\n}");
        out
    }
}

fn push_section(out: &mut String, items: impl Iterator<Item = String>) {
    let mut first = true;
    for item in items {
        if first {
            out.push_str("\n    ");
            first = false;
        } else {
            out.push_str(",\n    ");
        }
        out.push_str(&item);
    }
    if !first {
        out.push_str("\n  ");
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        for e in &self.entries {
            match e.value {
                MetricValue::Counter(v) => writeln!(f, "{} = {v}", e.name)?,
                MetricValue::Gauge(v) => writeln!(f, "{} = {v} (gauge)", e.name)?,
                MetricValue::Histogram(h) => writeln!(
                    f,
                    "{}: count {} sum {} p50 {} p90 {} p99 {} max {}",
                    e.name, h.count, h.sum, h.p50, h.p90, h.p99, h.max
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("prq_queries_total").add(3);
        r.gauge("prq_workers").set(4);
        let h = r.histogram("prq_phase3_duration_ns");
        h.record(1_000);
        h.record(3_000);
        r.snapshot()
    }

    #[test]
    fn json_has_all_sections() {
        let json = sample().to_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"prq_queries_total\": 3"), "{json}");
        assert!(json.contains("\"prq_workers\": 4"), "{json}");
        assert!(json.contains("\"prq_phase3_duration_ns\""), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        // Balanced braces — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_json().matches('{').count(), 4);
        assert!(snap.to_string().contains("no metrics"));
    }

    #[test]
    fn accessors_distinguish_kinds() {
        let snap = sample();
        assert_eq!(snap.counter("prq_queries_total"), Some(3));
        assert_eq!(snap.counter("prq_workers"), None, "gauge is not a counter");
        assert_eq!(snap.gauge("prq_workers"), Some(4));
        assert_eq!(snap.counter("missing"), None);
        let h = snap.histogram("prq_phase3_duration_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4_000);
        assert!((h.mean() - 2_000.0).abs() < 1e-9);
        assert_eq!(snap.counters(), vec![("prq_queries_total", 3)]);
    }

    #[test]
    fn display_lists_every_entry() {
        let text = sample().to_string();
        assert!(text.contains("prq_queries_total = 3"));
        assert!(text.contains("(gauge)"));
        assert!(text.contains("count 2"));
    }
}
