//! Scalar instruments: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Adds `n` to `cell`, saturating at `u64::MAX` instead of wrapping.
///
/// A wrapped counter silently lies about throughput; a saturated one is
/// visibly pinned at the ceiling. The CAS loop always succeeds because
/// the closure never returns `None`.
pub(crate) fn saturating_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    // ORDERING: Relaxed on both the RMW and the failure re-read —
    // counters are statistical instruments; no other memory is
    // published under this update, so no happens-before edge is needed.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(cur.saturating_add(n))
    });
}

/// A monotonically increasing event counter.
///
/// All operations are relaxed atomics — counters are statistical
/// instruments, not synchronization primitives — and additions saturate
/// at `u64::MAX`, so no input can make recording panic or wrap.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        saturating_add(&self.value, n);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — readers want a recent tally, not a
        // synchronized snapshot; nothing is read on the strength of it.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value instrument with a max-tracking variant.
///
/// Unlike [`Counter`], a gauge may move in both directions (`set`); the
/// pipeline uses it for configuration-like facts (worker counts, budget
/// ceilings) rather than event streams.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        // ORDERING: Relaxed — the gauge records a standalone fact; no
        // payload is published under it, so no release edge is needed.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: u64) {
        // ORDERING: Relaxed — the max is commutative and standalone;
        // contending writers need atomicity, not ordering.
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — same as `Counter::get`: a recent value,
        // never a synchronization point.
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_sets_and_tracks_max() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3, "set moves down too");
        g.record_max(10);
        g.record_max(5);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
