//! Name-keyed instrument registry.

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricValue, MetricsSnapshot, SnapshotEntry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A get-or-create map from static metric names to shared instruments.
///
/// Cloning a `Registry` clones the *handle*: all clones observe the same
/// instruments, so a pipeline can hand metric access to helpers without
/// lifetime plumbing. Lookup takes a mutex, so callers cache the
/// returned `Arc` handles instead of resolving names per event; a
/// poisoned lock is recovered (the map holds only atomics, which cannot
/// be left in a torn state), keeping every path panic-free.
///
/// Registering one name with two different instrument kinds is a caller
/// bug the registry survives: the first registration wins, and the
/// mismatched call gets a fresh *detached* instrument that records into
/// the void rather than corrupting the registered one.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<&'static str, Instrument>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self) -> MutexGuard<'_, BTreeMap<&'static str, Instrument>> {
        // Instruments are bags of relaxed atomics; a panic mid-update
        // cannot tear them, so the poisoned state is safe to adopt.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. See the type docs for the kind-mismatch policy.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.map();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. See the type docs for the kind-mismatch policy.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.map();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. See the type docs for the kind-mismatch policy.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.map();
        match map
            .entry(name)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// A point-in-time copy of every registered instrument, in name
    /// order (the map is a `BTreeMap`, so order is deterministic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self
            .map()
            .iter()
            .map(|(&name, instrument)| SnapshotEntry {
                name,
                value: match instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.summary()),
                },
            })
            .collect();
        MetricsSnapshot::from_entries(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        // Clones share the underlying map.
        let r2 = r.clone();
        r2.counter("a").inc();
        assert_eq!(r.counter("a").get(), 6);
    }

    #[test]
    fn kind_mismatch_yields_detached_instrument() {
        let r = Registry::new();
        r.counter("x").add(9);
        // Asking for "x" as a histogram must not clobber the counter.
        let detached = r.histogram("x");
        detached.record(1);
        assert_eq!(r.counter("x").get(), 9);
        assert_eq!(r.snapshot().counter("x"), Some(9));
        assert!(r.snapshot().histogram("x").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z_last").inc();
        r.gauge("m_mid").set(4);
        r.histogram("a_first").record(10);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|e| e.name).collect();
        assert_eq!(names, ["a_first", "m_mid", "z_last"]);
        assert_eq!(snap.gauge("m_mid"), Some(4));
    }
}
