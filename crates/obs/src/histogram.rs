//! Log₂-bucketed value distribution.

use crate::metric::saturating_add;
use crate::snapshot::HistogramSummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one for zero plus one per power of two in `u64`.
pub const BUCKET_COUNT: usize = 65;

/// A fixed-size, log₂-bucketed histogram of `u64` values.
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the
/// range `[2^(i−1), 2^i − 1]` (bucket `64` caps at `u64::MAX`). Every
/// write path is a relaxed atomic with saturating arithmetic, so
/// recording can never panic, wrap, or lock — the properties the
/// workspace auditor requires of hot-path instrumentation.
///
/// Quantiles are *conservative*: [`Histogram::quantile`] returns the
/// upper bound of the bucket containing the requested rank, so the
/// estimate never understates a latency.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: `0 → 0`, else `⌊log₂ v⌋ + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The largest value bucket `index` can hold (see type docs for the
    /// bucket layout); indices past the last bucket report `u64::MAX`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(Self::bucket_index(value)) {
            saturating_add(bucket, 1);
        }
        saturating_add(&self.count, 1);
        saturating_add(&self.sum, value);
        // ORDERING: Relaxed — the max is a commutative statistic; the
        // RMW needs atomicity against other recorders, not ordering.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records `n` identical observations at once — the batch form of
    /// [`Histogram::record`], for flushes that already aggregated a
    /// per-bucket tally (e.g. a per-query retry-depth histogram folded
    /// into the pipeline-wide one). `n == 0` records nothing.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(bucket) = self.buckets.get(Self::bucket_index(value)) {
            saturating_add(bucket, n);
        }
        saturating_add(&self.count, n);
        saturating_add(&self.sum, value.saturating_mul(n));
        // ORDERING: Relaxed — same commutative-max argument as `record`.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a floating-point observation, sanitized instead of
    /// rejected: NaN and negative values clamp to `0`, `+∞` and values
    /// beyond `u64::MAX` saturate. Recording never panics on any input.
    pub fn record_f64(&self, value: f64) {
        // `value <= 0.0` is false for NaN, so NaN needs its own arm.
        let v = if value.is_nan() || value <= 0.0 {
            0
        } else if value >= u64::MAX as f64 {
            u64::MAX
        } else {
            value as u64
        };
        self.record(v);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — a statistical snapshot; a reader racing a
        // recorder may see count ahead of a bucket, which the consumers
        // (summaries, quantiles) already treat conservatively.
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        // ORDERING: Relaxed — same statistical-snapshot contract as
        // `count`.
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest value recorded (0 when empty).
    pub fn max_value(&self) -> u64 {
        // ORDERING: Relaxed — same statistical-snapshot contract as
        // `count`.
        self.max.load(Ordering::Relaxed)
    }

    /// A copy of the per-bucket counts, index-aligned with
    /// [`Histogram::bucket_upper_bound`].
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        // ORDERING: Relaxed — same statistical-snapshot contract as the
        // scalar accessors above.
        std::array::from_fn(|i| match self.buckets.get(i) {
            Some(b) => b.load(Ordering::Relaxed),
            None => 0,
        })
    }

    /// Conservative quantile estimate: the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` observation. `q` is clamped to
    /// `[0, 1]` (NaN reads as `0`); an empty histogram reports `0`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        // ORDERING: Relaxed bucket reads — a racing recorder can skew
        // the estimate by one observation; the fallthrough below keeps
        // the answer conservative.
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket.load(Ordering::Relaxed));
            if cumulative >= target {
                return Self::bucket_upper_bound(i);
            }
        }
        // Only reachable if a concurrent writer raced `count` ahead of
        // its bucket increment; the max is the honest conservative answer.
        self.max_value()
    }

    /// Accumulates `other` into `self` bucket-by-bucket (saturating).
    /// Merging is associative and commutative up to saturation, so
    /// per-worker histograms can be folded in any order.
    pub fn merge(&self, other: &Histogram) {
        // ORDERING: Relaxed throughout — merging folds statistical
        // tallies; workers are expected to be quiescent, and a racing
        // recorder only shifts an observation between fold rounds.
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            saturating_add(mine, theirs.load(Ordering::Relaxed));
        }
        saturating_add(&self.count, other.count.load(Ordering::Relaxed));
        saturating_add(&self.sum, other.sum.load(Ordering::Relaxed));
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time scalar summary (count, sum, max, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max_value(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // Every value's bucket upper bound is ≥ the value itself — the
        // conservative-quantile property at the bucket level.
        for v in [0u64, 1, 2, 5, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(Histogram::bucket_upper_bound(Histogram::bucket_index(v)) >= v);
        }
    }

    #[test]
    fn record_and_summary() {
        let h = Histogram::new();
        for v in [0u64, 1, 100, 100, 5_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5_201);
        assert_eq!(h.max_value(), 5_000);
        let s = h.summary();
        assert_eq!(s.count, 5);
        // p50 = rank-3 value (100) → its bucket's upper bound (127).
        assert_eq!(s.p50, 127);
        assert!(s.p99 >= 5_000);
    }

    #[test]
    fn record_f64_sanitizes_hostile_inputs() {
        let h = Histogram::new();
        for v in [f64::NAN, f64::NEG_INFINITY, -3.0, -0.0] {
            h.record_f64(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 0, "hostile inputs clamp to zero");
        h.record_f64(f64::INFINITY);
        assert_eq!(h.max_value(), u64::MAX);
        h.record_f64(2.9);
        assert_eq!(h.max_value(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::new();
        h.record_duration(Duration::from_nanos(1_000));
        h.record_duration(Duration::from_secs(u64::MAX)); // > u64::MAX ns
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_value(), u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 15]
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20-1]
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        assert_eq!(h.quantile(0.95), (1 << 20) - 1);
        assert_eq!(h.quantile(1.0), (1 << 20) - 1);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.max_value(), 500);
        let counts = a.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }
}
