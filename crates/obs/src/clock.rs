//! Time sources for span timing: a monotonic production clock and a
//! scriptable mock for deterministic tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// The trait exists so [`PhaseSpan`](crate::PhaseSpan) timing is
/// testable without sleeping: production code passes
/// [`MonotonicClock`], tests pass [`MockClock`] and advance it by hand.
/// Implementations must be monotonic (readings never decrease) but need
/// not share an epoch — only differences of readings are meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's (arbitrary) origin.
    fn now_nanos(&self) -> u64;
}

/// Wall-clock backend over [`std::time::Instant`].
///
/// Readings are nanoseconds since the clock was created; `Instant`
/// guarantees monotonicity. Saturates after ~584 years of uptime.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced clock for deterministic span tests.
///
/// Starts at zero; [`MockClock::advance`] and [`MockClock::set`] move it
/// forward. `set` to an earlier time is ignored rather than honored, so
/// the monotonicity contract of [`Clock`] holds even under misuse.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A mock clock at time zero.
    pub const fn new() -> Self {
        MockClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advances the clock by `nanos` (saturating).
    pub fn advance(&self, nanos: u64) {
        // ORDERING: Relaxed — the mock time word is self-contained;
        // tests drive it from one thread and nothing is published
        // under it.
        let _ = self
            .now
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(nanos))
            });
    }

    /// Moves the clock to `nanos` if that is not in the past.
    pub fn set(&self, nanos: u64) {
        // ORDERING: Relaxed — monotone max of a standalone word; no
        // ordering contract with other memory.
        self.now.fetch_max(nanos, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_nanos(&self) -> u64 {
        // ORDERING: Relaxed — reading the standalone mock time word.
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_scriptable_and_monotone() {
        let c = MockClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(100);
        assert_eq!(c.now_nanos(), 100);
        c.set(50); // backwards: ignored
        assert_eq!(c.now_nanos(), 100);
        c.set(250);
        assert_eq!(c.now_nanos(), 250);
        c.advance(u64::MAX);
        assert_eq!(c.now_nanos(), u64::MAX);
    }
}
