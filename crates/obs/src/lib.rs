//! # gprq-obs
//!
//! Zero-dependency observability primitives for the query pipeline:
//! atomics + `std` only, no allocation on the record path, and no
//! panicking operation anywhere (the workspace auditor enforces the
//! panic-free rule on this crate like on the numeric core).
//!
//! * [`Counter`] — monotonic event counter with saturating adds;
//! * [`Gauge`] — last-value / max-value instrument;
//! * [`Histogram`] — 65 log₂-bucketed value distribution with
//!   [`Histogram::merge`] and conservative quantile estimates;
//! * [`Registry`] — get-or-create handle map keyed by `&'static str`;
//! * [`PhaseSpan`] — RAII wall-clock timer recording into a histogram,
//!   backed by a [`Clock`] that is monotonic in production
//!   ([`MonotonicClock`]) and scriptable in tests ([`MockClock`]);
//! * [`MetricsSnapshot`] — a point-in-time copy of a registry with a
//!   hand-rolled JSON renderer (same style as the bench bins).
//!
//! ```
//! use gprq_obs::{MockClock, PhaseSpan, Registry};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("prq_queries_total");
//! let phase3 = registry.histogram("prq_phase3_duration_ns");
//!
//! let clock = Arc::new(MockClock::new());
//! queries.inc();
//! let span = PhaseSpan::start(clock.as_ref(), phase3.as_ref());
//! clock.advance(1_500); // pretend Phase 3 took 1.5 µs
//! span.finish();
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("prq_queries_total"), Some(1));
//! assert_eq!(snap.histogram("prq_phase3_duration_ns").map(|h| h.count), Some(1));
//! assert!(snap.to_json().contains("\"prq_queries_total\": 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod histogram;
mod metric;
mod registry;
mod snapshot;
mod span;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use histogram::{Histogram, BUCKET_COUNT};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{HistogramSummary, MetricValue, MetricsSnapshot, SnapshotEntry};
pub use span::PhaseSpan;
