//! Query-workload builders.

use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects `trials` random objects of `data` to serve as query centers
/// (paper §V-A: "we selected one target object randomly as the query
/// center then issued a probabilistic range query. The averaged time of
/// five query trials was used"). Indices may repeat only if
/// `trials > data.len()`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn random_query_centers<const D: usize>(
    data: &[Vector<D>],
    trials: usize,
    seed: u64,
) -> Vec<(usize, Vector<D>)> {
    assert!(!data.is_empty(), "cannot draw query centers from no data");
    let mut rng = StdRng::seed_from_u64(seed);
    if trials >= data.len() {
        return data.iter().copied().enumerate().collect();
    }
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < trials {
        chosen.insert(rng.gen_range(0..data.len()));
    }
    chosen.into_iter().map(|i| (i, data[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Vector<2>> {
        (0..n).map(|i| Vector::from([i as f64, 0.0])).collect()
    }

    #[test]
    fn draws_distinct_centers_from_data() {
        let d = data(100);
        let centers = random_query_centers(&d, 5, 42);
        assert_eq!(centers.len(), 5);
        let mut seen = std::collections::BTreeSet::new();
        for (idx, p) in &centers {
            assert_eq!(d[*idx], *p);
            assert!(seen.insert(*idx), "duplicate index {idx}");
        }
    }

    #[test]
    fn deterministic() {
        let d = data(1000);
        assert_eq!(
            random_query_centers(&d, 10, 7),
            random_query_centers(&d, 10, 7)
        );
        assert_ne!(
            random_query_centers(&d, 10, 7),
            random_query_centers(&d, 10, 8)
        );
    }

    #[test]
    fn trials_exceeding_data_returns_everything() {
        let d = data(4);
        let centers = random_query_centers(&d, 10, 1);
        assert_eq!(centers.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn rejects_empty_data() {
        random_query_centers::<2>(&[], 1, 1);
    }
}
