//! Moving-object trajectory simulation with localization uncertainty —
//! the query workload of the paper's motivating scenario (§I, Example 1
//! and Fig. 1: a robot whose pose estimate is a Gaussian that drifts
//! between fixes).
//!
//! The model is deliberately the textbook dead-reckoning one
//! (Thrun et al., *Probabilistic Robotics*, which the paper cites for
//! localization): between absolute position fixes, odometry noise grows
//! the pose covariance anisotropically — faster along the direction of
//! travel than across it — and a fix collapses it back to the sensor
//! accuracy.

use crate::covariance::rotated_covariance_2d;
use gprq_linalg::{Matrix, Vector};

/// One pose estimate along a trajectory.
#[derive(Debug, Clone, Copy)]
pub struct Pose {
    /// Time stamp (seconds from start).
    pub time: f64,
    /// Estimated position (mean of the belief distribution).
    pub mean: Vector<2>,
    /// Belief covariance.
    pub covariance: Matrix<2>,
    /// Heading (radians) at this pose.
    pub heading: f64,
}

/// Parameters of the dead-reckoning uncertainty model.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryModel {
    /// Distance traveled per step.
    pub step_length: f64,
    /// Heading change per step (constant-curvature path).
    pub turn_rate: f64,
    /// Positional std-dev right after a fix.
    pub fix_accuracy: f64,
    /// Std-dev growth per step along the direction of travel.
    pub along_track_drift: f64,
    /// Ratio of cross-track to along-track drift (odometry slips more
    /// in the direction of motion; typically < 1).
    pub cross_track_ratio: f64,
    /// A position fix arrives every this many steps (`0` = never).
    pub fix_interval: usize,
}

impl Default for TrajectoryModel {
    fn default() -> Self {
        TrajectoryModel {
            step_length: 35.0,
            turn_rate: 0.12,
            fix_accuracy: 2.0,
            along_track_drift: 4.5,
            cross_track_ratio: 1.0 / 3.0,
            fix_interval: 8,
        }
    }
}

/// Simulates `steps` poses starting from `start` with heading
/// `initial_heading`. Deterministic (the *means* follow the nominal
/// path; uncertainty lives in the covariances — exactly how a filter's
/// belief evolves in expectation).
pub fn simulate_trajectory(
    model: &TrajectoryModel,
    start: Vector<2>,
    initial_heading: f64,
    steps: usize,
    dt: f64,
) -> Vec<Pose> {
    let mut poses = Vec::with_capacity(steps);
    let mut position = start;
    let mut heading = initial_heading;
    let mut along_sigma = model.fix_accuracy;
    for step in 0..steps {
        heading += model.turn_rate;
        position += Vector::from([
            model.step_length * heading.cos(),
            model.step_length * heading.sin(),
        ]);
        along_sigma += model.along_track_drift;
        if model.fix_interval > 0 && (step + 1) % model.fix_interval == 0 {
            along_sigma = model.fix_accuracy;
        }
        let cross_sigma = (along_sigma * model.cross_track_ratio).max(model.fix_accuracy * 0.5);
        poses.push(Pose {
            time: (step + 1) as f64 * dt,
            mean: position,
            covariance: rotated_covariance_2d(along_sigma, cross_sigma, heading),
            heading,
        });
    }
    poses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_steps() {
        let poses = simulate_trajectory(&TrajectoryModel::default(), Vector::ZERO, 0.0, 24, 5.0);
        assert_eq!(poses.len(), 24);
        assert!((poses[0].time - 5.0).abs() < 1e-12);
        assert!((poses[23].time - 120.0).abs() < 1e-12);
    }

    #[test]
    fn covariances_are_spd_and_grow_between_fixes() {
        let model = TrajectoryModel::default();
        let poses = simulate_trajectory(&model, Vector::ZERO, 0.3, 16, 1.0);
        for p in &poses {
            assert!(p.covariance.cholesky().is_ok(), "non-SPD at t = {}", p.time);
        }
        // Uncertainty (trace) grows within a fix interval…
        let tr = |i: usize| poses[i].covariance.trace();
        assert!(tr(1) > tr(0) * 0.99 && tr(5) > tr(1));
        // …and collapses at the fix (steps 7 → index 7 is the fix step).
        assert!(tr(7) < tr(6), "fix should collapse uncertainty");
    }

    #[test]
    fn uncertainty_is_anisotropic_along_heading() {
        let model = TrajectoryModel {
            fix_interval: 0,
            ..TrajectoryModel::default()
        };
        let poses = simulate_trajectory(&model, Vector::ZERO, 0.0, 10, 1.0);
        let last = poses.last().unwrap();
        let eig = last.covariance.symmetric_eigen().unwrap();
        // Major axis ≈ heading direction.
        let major = eig.eigenvector(0);
        let h = Vector::from([last.heading.cos(), last.heading.sin()]);
        assert!(major.dot(&h).abs() > 0.99, "major axis misaligned");
        // Strong anisotropy (ratio of std-devs ≈ 3).
        let ratio = (eig.eigenvalues[0] / eig.eigenvalues[1]).sqrt();
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn no_fix_means_monotone_growth() {
        let model = TrajectoryModel {
            fix_interval: 0,
            ..TrajectoryModel::default()
        };
        let poses = simulate_trajectory(&model, Vector::ZERO, 0.0, 12, 1.0);
        for w in poses.windows(2) {
            assert!(w[1].covariance.trace() > w[0].covariance.trace());
        }
    }

    #[test]
    fn path_follows_constant_curvature() {
        let model = TrajectoryModel::default();
        let poses = simulate_trajectory(&model, Vector::ZERO, 0.0, 3, 1.0);
        // Step lengths are constant.
        let d01 = poses[0].mean.distance(&poses[1].mean);
        let d12 = poses[1].mean.distance(&poses[2].mean);
        assert!((d01 - d12).abs() < 1e-9);
        assert!((d01 - model.step_length).abs() < 1e-9);
    }
}
