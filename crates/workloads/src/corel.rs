//! Nine-dimensional image-feature generator — the Corel Color Moments
//! substitute.
//!
//! The paper's experiment II uses the Color Moments table of the UCI KDD
//! Corel Image Features archive: 68,040 nine-dimensional vectors (three
//! moments for each of three color channels), queried with the Euclidean
//! distance (§VI-A). What the experiment exercises is:
//!
//! * a medium-dimensional real-valued dataset with strong cluster
//!   structure (images of similar scenes share features);
//! * anisotropic, correlated local neighborhoods — the 20-NN sample
//!   covariances of Eq. 35 come out *narrow* (`λ⊥/λ∥ ≫ 1`), driving
//!   Table III's observations about OR and BF;
//! * a scale where a `δ = 0.7` Euclidean range around a random object
//!   holds ≈ 15 objects on average.
//!
//! This generator draws from a seeded mixture of anisotropic Gaussians
//! calibrated to those properties.

use gprq_gaussian::StandardNormal;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of mixture components.
const COMPONENTS: usize = 32;

/// Generates `n` Corel-like 9-D feature vectors.
///
/// Deterministic under `seed`. Use `n = `[`crate::COREL_SIZE`] for the
/// paper's cardinality.
pub fn corel_like_9d(n: usize, seed: u64) -> Vec<Vector<9>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sn = StandardNormal::new();

    // Component centers spread like color-moment features: first three
    // dims (means) larger scale, later dims (higher moments) tighter.
    let dim_scale = [3.0, 3.0, 3.0, 1.5, 1.5, 1.5, 1.0, 1.0, 1.0];
    let centers: Vec<Vector<9>> = (0..COMPONENTS)
        .map(|_| Vector::from_fn(|i| (rng.gen::<f64>() - 0.5) * 2.0 * dim_scale[i]))
        .collect();

    // Per-component anisotropic axis scales (axis-aligned plus a random
    // rotation applied through pairwise Givens mixing for correlation).
    //
    // Image-feature collections are locally **low-dimensional**: the
    // points of a scene type vary along a handful of directions and are
    // nearly flat in the rest. This is what makes the paper's Eq. 35
    // covariances behave as §VI-B describes — a 20-NN sample covariance
    // comes out near-singular, so `κ = |Σ̃|^{1/9}` is tiny, the blended
    // Σ stays narrow, and the query center's own qualification
    // probability is high (the paper reports 70 % on average). Each
    // component therefore gets 2–4 "live" axes and thin remaining ones.
    let component_axes: Vec<[f64; 9]> = (0..COMPONENTS)
        .map(|_| {
            let live = 2 + rng.gen_range(0..3); // 2–4 extended directions
            let mut axes = [0.0; 9];
            for (k, a) in axes.iter_mut().enumerate() {
                *a = if k < live {
                    // Live axes: log-uniform in [0.5, 2.5].
                    0.5 * (5.0f64).powf(rng.gen::<f64>())
                } else {
                    // Flat axes: log-uniform in [0.02, 0.08].
                    0.02 * (4.0f64).powf(rng.gen::<f64>())
                };
            }
            axes
        })
        .collect();
    // Random correlation structure per component: a handful of Givens
    // rotations (angle, axis pair) applied to the axis-aligned sample.
    let component_rotations: Vec<Vec<(usize, usize, f64)>> = (0..COMPONENTS)
        .map(|_| {
            (0..12)
                .map(|_| {
                    let i = rng.gen_range(0..9);
                    let mut j = rng.gen_range(0..9);
                    if j == i {
                        j = (j + 1) % 9;
                    }
                    (i, j, rng.gen::<f64>() * std::f64::consts::TAU)
                })
                .collect()
        })
        .collect();
    // Mixture weights: skewed (some scene types are common).
    let mut weights: Vec<f64> = (0..COMPONENTS).map(|_| rng.gen::<f64>().powi(2)).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();

    (0..n)
        .map(|_| {
            let u = rng.gen::<f64>();
            let c = cumulative.partition_point(|&cw| cw < u).min(COMPONENTS - 1);
            // Axis-aligned anisotropic Gaussian sample…
            let mut v = Vector::<9>::from_fn(|i| sn.sample(&mut rng) * component_axes[c][i]);
            // …rotated by the component's Givens sequence…
            for &(i, j, angle) in &component_rotations[c] {
                let (s, co) = angle.sin_cos();
                let (vi, vj) = (v[i], v[j]);
                v[i] = co * vi - s * vj;
                v[j] = s * vi + co * vj;
            }
            // …translated to the component center, and globally scaled
            // to calibrate the δ = 0.7 neighborhood size to the paper's
            // "15.3 objects on average" anchor (§VI-A).
            (v + centers[c]) * GLOBAL_SCALE
        })
        .collect()
}

/// Global coordinate scale (see the calibration note above).
const GLOBAL_SCALE: f64 = 2.5;

/// Average number of points within Euclidean distance `delta` of
/// `trials` randomly chosen points of `data` — the paper's calibration
/// statistic ("15.3 objects are retrieved on average" at δ = 0.7).
pub fn mean_range_count<const D: usize>(
    data: &[Vector<D>],
    delta: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(!data.is_empty() && trials > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..trials {
        let center = &data[rng.gen_range(0..data.len())];
        total += data.iter().filter(|p| p.distance(center) <= delta).count();
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_and_determinism() {
        let a = corel_like_9d(5_000, 3);
        assert_eq!(a.len(), 5_000);
        assert_eq!(a, corel_like_9d(5_000, 3));
        assert_ne!(a, corel_like_9d(5_000, 4));
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clustered_not_uniform() {
        // Nearest-neighbor distances in clustered data are much smaller
        // than in a uniform scatter of the same bounding volume.
        let pts = corel_like_9d(4_000, 1);
        let mut nn_sum = 0.0;
        for i in (0..400).map(|k| k * 10) {
            let mut best = f64::INFINITY;
            for (j, p) in pts.iter().enumerate() {
                if j != i {
                    best = best.min(pts[i].distance(p));
                }
            }
            nn_sum += best;
        }
        let mean_nn = nn_sum / 400.0;
        // Data spans roughly [-8, 8]^9; uniform NN distance would be
        // on the order of the extent; clustered data sits well below 2.
        assert!(mean_nn < 2.0, "mean NN distance {mean_nn}");
    }

    #[test]
    fn range_count_calibration() {
        // The paper's anchor: at full cardinality and δ = 0.7, a random
        // object has ≈ 15 neighbors. Check the calibration at reduced
        // cardinality by scaling: with n = 17,010 (quarter size) expect
        // roughly a quarter of the neighbors; assert the full-size
        // extrapolation lands within a factor ~3 of 15.3.
        let n = 17_010;
        let pts = corel_like_9d(n, 1);
        let mean = mean_range_count(&pts, 0.7, 30, 9);
        let extrapolated = mean * (crate::COREL_SIZE as f64 / n as f64);
        assert!(
            (5.0..60.0).contains(&extrapolated),
            "extrapolated δ=0.7 count {extrapolated}, paper says 15.3"
        );
    }

    #[test]
    fn moments_dims_have_different_scales() {
        let pts = corel_like_9d(10_000, 1);
        let var = |dim: usize| {
            let mean: f64 = pts.iter().map(|p| p[dim]).sum::<f64>() / pts.len() as f64;
            pts.iter().map(|p| (p[dim] - mean).powi(2)).sum::<f64>() / pts.len() as f64
        };
        // First-moment dims should be more spread than third-moment dims.
        let first: f64 = (0..3).map(var).sum();
        let third: f64 = (6..9).map(var).sum();
        assert!(first > third, "first {first} vs third {third}");
    }
}
