//! Road-network-like 2-D point generator — the TIGER Long Beach
//! substitute.
//!
//! The paper extracts the midpoint of each of 50,747 road line segments
//! of Long Beach, CA, normalized to `[0, 1000]²` (§V-A). The experiments
//! depend on three properties of that data: its cardinality, its extent,
//! and its *non-uniform, locally linear* clustering (points lie along
//! streets, denser downtown). This generator reproduces those
//! properties:
//!
//! * a Manhattan-style grid of arterial streets with jittered spacing —
//!   segment midpoints are laid densely along each street;
//! * a set of longer diagonal/curved roads crossing the grid;
//! * cluster noise around a few "downtown" hot spots;
//!
//! with density modulated by distance to the densest hot spot, and the
//! exact requested cardinality. All randomness is seeded.

use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extent of the normalized space (the paper's `[0, 1000]²`).
pub const EXTENT: f64 = 1000.0;

/// Generates `n` road-midpoint-like points in `[0, 1000]²`.
///
/// Deterministic under `seed`. Use `n = `[`crate::ROAD_NETWORK_SIZE`]
/// for the paper's cardinality.
pub fn road_network_2d(n: usize, seed: u64) -> Vec<Vector<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);

    // Downtown hot spots: density centers.
    let hotspots: Vec<(f64, f64, f64)> = vec![
        (350.0, 420.0, 280.0), // (x, y, influence radius)
        (700.0, 650.0, 200.0),
        (180.0, 780.0, 150.0),
    ];
    let density_at = |x: f64, y: f64| -> f64 {
        let mut d = 0.15; // base suburban density
        for &(hx, hy, r) in &hotspots {
            let dist2 = (x - hx) * (x - hx) + (y - hy) * (y - hy);
            d += (-dist2 / (2.0 * r * r)).exp();
        }
        d
    };

    // 1) Grid arterials: ~55 streets per axis with jittered spacing.
    let streets_per_axis = 55;
    let mut verticals = Vec::with_capacity(streets_per_axis);
    let mut horizontals = Vec::with_capacity(streets_per_axis);
    for i in 0..streets_per_axis {
        let base = (i as f64 + 0.5) / streets_per_axis as f64 * EXTENT;
        verticals.push(base + rng.gen_range(-6.0..6.0));
        horizontals.push(base + rng.gen_range(-6.0..6.0));
    }

    // Allocate ~70 % of the points to grid streets (block-length segments
    // give midpoints spaced ~15–40 units along a street), thinned by the
    // density field.
    let grid_budget = n * 7 / 10;
    while points.len() < grid_budget {
        let along = rng.gen::<f64>() * EXTENT;
        let (x, y) = if rng.gen::<bool>() {
            let v = verticals[rng.gen_range(0..streets_per_axis)];
            (v + rng.gen_range(-1.5..1.5), along)
        } else {
            let h = horizontals[rng.gen_range(0..streets_per_axis)];
            (along, h + rng.gen_range(-1.5..1.5))
        };
        // Rejection-sample against the density field (max ≈ 1.3).
        if rng.gen::<f64>() * 1.3 < density_at(x, y) {
            points.push(clamp_point(x, y));
        }
    }

    // 2) Diagonal / curved connector roads: ~20 % of points.
    let connector_budget = n * 9 / 10;
    let n_roads = 24;
    let roads: Vec<(f64, f64, f64, f64, f64)> = (0..n_roads)
        .map(|_| {
            // Start point, heading, curvature, length.
            (
                rng.gen::<f64>() * EXTENT,
                rng.gen::<f64>() * EXTENT,
                rng.gen::<f64>() * std::f64::consts::TAU,
                rng.gen_range(-0.002..0.002),
                rng.gen_range(300.0..1200.0),
            )
        })
        .collect();
    while points.len() < connector_budget {
        let &(x0, y0, heading, curvature, length) = &roads[rng.gen_range(0..n_roads)];
        let t = rng.gen::<f64>() * length;
        let angle = heading + curvature * t;
        let x = x0 + t * angle.cos() + rng.gen_range(-1.5..1.5);
        let y = y0 + t * angle.sin() + rng.gen_range(-1.5..1.5);
        if (0.0..=EXTENT).contains(&x) && (0.0..=EXTENT).contains(&y) {
            points.push(clamp_point(x, y));
        }
    }

    // 3) Cluster noise around hot spots (cul-de-sacs, parking aisles).
    while points.len() < n {
        let &(hx, hy, r) = &hotspots[rng.gen_range(0..hotspots.len())];
        let angle = rng.gen::<f64>() * std::f64::consts::TAU;
        let radius = r * rng.gen::<f64>().sqrt();
        let x = hx + radius * angle.cos();
        let y = hy + radius * angle.sin();
        points.push(clamp_point(x, y));
    }

    debug_assert_eq!(points.len(), n);
    points
}

fn clamp_point(x: f64, y: f64) -> Vector<2> {
    Vector::from([x.clamp(0.0, EXTENT), y.clamp(0.0, EXTENT)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cardinality_and_extent() {
        let pts = road_network_2d(crate::ROAD_NETWORK_SIZE, 1);
        assert_eq!(pts.len(), 50_747);
        for p in &pts {
            assert!((0.0..=EXTENT).contains(&p[0]));
            assert!((0.0..=EXTENT).contains(&p[1]));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = road_network_2d(1_000, 7);
        let b = road_network_2d(1_000, 7);
        assert_eq!(a, b);
        let c = road_network_2d(1_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn non_uniform_density() {
        // Density near the main hotspot must clearly exceed a far corner.
        let pts = road_network_2d(50_747, 1);
        let count_near = |cx: f64, cy: f64| {
            pts.iter()
                .filter(|p| (p[0] - cx).abs() < 50.0 && (p[1] - cy).abs() < 50.0)
                .count()
        };
        let downtown = count_near(350.0, 420.0);
        let corner = count_near(950.0, 50.0);
        assert!(
            downtown > corner * 3,
            "downtown {downtown} vs corner {corner}"
        );
    }

    #[test]
    fn locally_linear_structure() {
        // Road data has many points sharing (nearly) an x or y
        // coordinate (grid streets). Count points within 2 units of the
        // busiest vertical line; uniform data of the same size would put
        // ~0.2 % there, roads put several times that.
        let pts = road_network_2d(50_747, 1);
        let mut histogram = vec![0usize; 1000];
        for p in &pts {
            histogram[(p[0].min(999.9) as usize).min(999)] += 1;
        }
        let max_column = histogram.iter().copied().max().unwrap();
        let uniform_expected = pts.len() / 1000;
        // Uniform data would put ~50 ± 7 in every column; street-aligned
        // data concentrates several-fold more in the busiest column.
        assert!(
            max_column > uniform_expected * 3,
            "max column {max_column} vs uniform {uniform_expected}"
        );
    }

    #[test]
    fn small_n_works() {
        assert_eq!(road_network_2d(10, 3).len(), 10);
        assert!(road_network_2d(0, 3).is_empty());
    }
}
