//! Generic synthetic point distributions — uniform and clustered — for
//! controlled experiments (cost-model validation and the dimensionality
//! sweep) where the road-network/Corel generators' structure would be a
//! confound.

use gprq_gaussian::StandardNormal;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` points uniform over `[0, extent]^D`.
pub fn uniform<const D: usize>(n: usize, extent: f64, seed: u64) -> Vec<Vector<D>> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::from_fn(|_| rng.gen::<f64>() * extent))
        .collect()
}

/// `n` points from `clusters` isotropic Gaussian blobs with centers
/// uniform in `[0, extent]^D` and the given per-axis spread. Points are
/// clamped into the domain.
pub fn clustered<const D: usize>(
    n: usize,
    extent: f64,
    clusters: usize,
    spread: f64,
    seed: u64,
) -> Vec<Vector<D>> {
    assert!(extent > 0.0 && spread > 0.0 && clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sn = StandardNormal::new();
    let centers: Vec<Vector<D>> = (0..clusters)
        .map(|_| Vector::from_fn(|_| rng.gen::<f64>() * extent))
        .collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..clusters)];
            Vector::from_fn(|i| (c[i] + sn.sample(&mut rng) * spread).clamp(0.0, extent))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_domain_evenly() {
        let pts = uniform::<2>(20_000, 100.0, 1);
        assert_eq!(pts.len(), 20_000);
        // Quadrant counts within 3% of 25%.
        let q = pts.iter().filter(|p| p[0] < 50.0 && p[1] < 50.0).count() as f64 / 20_000.0;
        assert!((q - 0.25).abs() < 0.03, "quadrant fraction {q}");
        assert!(pts.iter().all(|p| (0.0..=100.0).contains(&p[0])));
    }

    #[test]
    fn clustered_is_clumpy() {
        let pts = clustered::<2>(10_000, 1000.0, 5, 10.0, 2);
        // Mean nearest-neighbor distance far below the uniform
        // expectation (~0.5·√(A/n) ≈ 5 for uniform).
        let mut nn_sum = 0.0;
        for i in (0..200).map(|k| k * 50) {
            let mut best = f64::INFINITY;
            for (j, p) in pts.iter().enumerate() {
                if j != i {
                    best = best.min(pts[i].distance(p));
                }
            }
            nn_sum += best;
        }
        assert!(nn_sum / 200.0 < 2.0, "mean NN {}", nn_sum / 200.0);
    }

    #[test]
    fn deterministic_and_in_bounds() {
        let a = clustered::<3>(500, 50.0, 3, 5.0, 9);
        let b = clustered::<3>(500, 50.0, 3, 5.0, 9);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|p| (0..3).all(|i| (0.0..=50.0).contains(&p[i]))));
    }

    #[test]
    fn nine_dimensional_uniform() {
        let pts = uniform::<9>(1_000, 2.0, 4);
        assert_eq!(pts.len(), 1_000);
        let mean: f64 = pts
            .iter()
            .map(|p| p.as_slice().iter().sum::<f64>())
            .sum::<f64>()
            / (9_000.0);
        assert!((mean - 1.0).abs() < 0.05, "coordinate mean {mean}");
    }

    #[test]
    #[should_panic(expected = "extent")]
    fn rejects_bad_extent() {
        uniform::<2>(10, 0.0, 1);
    }
}
