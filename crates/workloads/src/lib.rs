//! # gprq-workloads
//!
//! Synthetic workload generators standing in for the paper's two
//! experimental datasets, plus the query-parameter builders of §V–§VI:
//!
//! * [`road_network`] — a substitute for the TIGER Long Beach road
//!   dataset (50,747 road-segment midpoints normalized to
//!   `[0, 1000]²`): a seeded generator producing the same cardinality
//!   and extent with road-like structure (grid arterials, curved
//!   secondaries, clustered noise);
//! * [`corel`] — a substitute for the UCI KDD Corel Color Moments table
//!   (68,040 nine-dimensional feature vectors): a mixture-of-Gaussians
//!   generator with anisotropic, correlated components;
//! * [`covariance`] — the paper's query covariance builders, including
//!   Eq. 34's tilted 3:1 ellipse scaled by γ;
//! * [`feedback`] — the pseudo-relevance-feedback covariance of Eq. 35
//!   (`Σ = Σ̃ + κI`, `κ = |Σ̃|^{1/d}`) built from k-NN samples;
//! * [`queries`] — random query-center selection as in §V-A ("we selected
//!   one target object randomly as the query center").
//!
//! Both dataset generators are deterministic under a seed, so every
//! experiment in `gprq-bench` is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corel;
pub mod covariance;
pub mod feedback;
pub mod queries;
pub mod road_network;
pub mod synthetic;
pub mod trajectory;

pub use corel::corel_like_9d;
pub use covariance::{eq34_covariance, rotated_covariance_2d};
pub use feedback::pseudo_feedback_covariance;
pub use queries::random_query_centers;
pub use road_network::road_network_2d;
pub use trajectory::{simulate_trajectory, Pose, TrajectoryModel};

/// Cardinality of the paper's 2-D dataset (§V-A).
pub const ROAD_NETWORK_SIZE: usize = 50_747;
/// Cardinality of the paper's 9-D dataset (§VI-A).
pub const COREL_SIZE: usize = 68_040;
