//! Query covariance builders for the experiments.

use gprq_linalg::Matrix;

/// The paper's 2-D query covariance (Eq. 34):
///
/// ```text
/// Σ = γ · [ 7    2√3 ]
///         [ 2√3   3  ]
/// ```
///
/// whose isodensity contours are ellipses tilted 30° with a 3:1
/// major-to-minor axis ratio; `γ` scales the positional uncertainty
/// (γ ∈ {1, 10, 100} in Tables I–II).
pub fn eq34_covariance(gamma: f64) -> Matrix<2> {
    assert!(gamma > 0.0, "γ must be positive");
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
}

/// A general 2-D covariance with principal standard deviations
/// `(sigma_major, sigma_minor)` and the major axis rotated `angle`
/// radians from the x-axis — used by the §V-B.3 Σ-shape sweep
/// ("if we choose a matrix such that its isosurface has a thin
/// ellipsoidal shape, the difference will increase").
pub fn rotated_covariance_2d(sigma_major: f64, sigma_minor: f64, angle: f64) -> Matrix<2> {
    assert!(
        sigma_major > 0.0 && sigma_minor > 0.0,
        "standard deviations must be positive"
    );
    let (s, c) = angle.sin_cos();
    let (l1, l2) = (sigma_major * sigma_major, sigma_minor * sigma_minor);
    // R · diag(λ) · Rᵗ.
    Matrix::from_rows([
        [c * c * l1 + s * s * l2, s * c * (l1 - l2)],
        [s * c * (l1 - l2), s * s * l1 + c * c * l2],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq34_shape() {
        let m = eq34_covariance(1.0);
        // Eigenvalues 9 and 1 (3:1 axis ratio in std-dev terms), det 9.
        let e = m.symmetric_eigen().unwrap();
        assert!((e.eigenvalues[0] - 9.0).abs() < 1e-9);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-9);
        // Tilted 30°.
        let v = e.eigenvector(0);
        let angle = v[1].atan2(v[0]).abs();
        let thirty = std::f64::consts::PI / 6.0;
        assert!(
            (angle - thirty).abs() < 1e-9 || (angle - (std::f64::consts::PI - thirty)).abs() < 1e-9
        );
    }

    #[test]
    fn eq34_gamma_scales_linearly() {
        let a = eq34_covariance(1.0);
        let b = eq34_covariance(100.0);
        for i in 0..2 {
            for j in 0..2 {
                assert!((b[(i, j)] - 100.0 * a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rotated_covariance_reproduces_eq34() {
        // Eq. 34 ≡ major std 3, minor std 1, tilted 30°.
        let built = rotated_covariance_2d(3.0, 1.0, std::f64::consts::PI / 6.0);
        let paper = eq34_covariance(1.0);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (built[(i, j)] - paper[(i, j)]).abs() < 1e-9,
                    "entry ({i},{j}): {} vs {}",
                    built[(i, j)],
                    paper[(i, j)]
                );
            }
        }
    }

    #[test]
    fn rotated_covariance_is_spd() {
        for &(a, b, t) in &[(1.0, 1.0, 0.0), (5.0, 0.5, 1.1), (10.0, 1.0, -0.7)] {
            let m = rotated_covariance_2d(a, b, t);
            assert!(m.cholesky().is_ok(), "({a}, {b}, {t})");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_gamma() {
        eq34_covariance(0.0);
    }
}
