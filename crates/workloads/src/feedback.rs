//! Pseudo-relevance-feedback covariance construction (paper Eq. 35).
//!
//! Experiment II's scenario: a user supplies sample images (simulated by
//! the k-NN of a randomly chosen object, k = 20 including the query
//! itself); the system estimates the user's interest region as a Gaussian
//! whose covariance blends the sample covariance with the Euclidean
//! metric:
//!
//! ```text
//! Σ = Σ̃ + κ·I,     κ = |Σ̃|^{1/d}
//! ```
//!
//! The κ·I term is "a normalization factor … for avoiding overfitting due
//! to a small number of sample objects"; the choice `κ = |Σ̃|^{1/d}`
//! makes `|Σ̃| = |κI|`, blending "the sample-based and the Euclidean
//! distance-based approaches with the same importance".

use gprq_linalg::{Matrix, Vector};

/// Builds the Eq. 35 covariance from feedback samples.
///
/// `samples` are the k-NN vectors (the paper uses k = 20, query
/// included). The sample covariance Σ̃ uses the maximum-likelihood
/// normalization (divide by k).
///
/// When Σ̃ is singular or near-singular (fewer than `d + 1` distinct
/// samples), `|Σ̃|^{1/d}` collapses toward zero and Σ would stay
/// degenerate; a floor of `10⁻⁹ · trace(Σ̃)/d + 10⁻¹²` keeps the result
/// positive-definite in that edge case without measurably changing
/// well-conditioned inputs.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn pseudo_feedback_covariance<const D: usize>(samples: &[Vector<D>]) -> Matrix<D> {
    assert!(!samples.is_empty(), "need at least one feedback sample");
    let k = samples.len() as f64;
    let mean = samples.iter().fold(Vector::<D>::ZERO, |acc, s| acc + *s) * (1.0 / k);
    let mut sigma_tilde = Matrix::<D>::ZERO;
    for s in samples {
        let d = *s - mean;
        for i in 0..D {
            for j in 0..D {
                sigma_tilde[(i, j)] += d[i] * d[j];
            }
        }
    }
    sigma_tilde = sigma_tilde.scale(1.0 / k);

    let det = sigma_tilde.determinant().max(0.0);
    let kappa_paper = det.powf(1.0 / D as f64);
    let floor = 1e-9 * sigma_tilde.trace() / D as f64 + 1e-12;
    let kappa = kappa_paper.max(floor);

    let mut sigma = sigma_tilde;
    for i in 0..D {
        sigma[(i, i)] += kappa;
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_cloud(n: usize, stds: [f64; 3], seed: u64) -> Vec<Vector<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sn = gprq_gaussian::StandardNormal::new();
        (0..n)
            .map(|_| Vector::from_fn(|i| sn.sample(&mut rng) * stds[i] + rng.gen::<f64>() * 0.0))
            .collect()
    }

    #[test]
    fn recovers_diagonal_structure() {
        let samples = gaussian_cloud(5_000, [3.0, 1.0, 0.5], 1);
        let sigma = pseudo_feedback_covariance(&samples);
        // κ = |Σ̃|^{1/3} ≈ (9·1·0.25)^{1/3} ≈ 1.31 is added to each
        // diagonal entry.
        let kappa = (9.0f64 * 1.0 * 0.25).powf(1.0 / 3.0);
        assert!(
            (sigma[(0, 0)] - (9.0 + kappa)).abs() < 0.6,
            "{}",
            sigma[(0, 0)]
        );
        assert!((sigma[(1, 1)] - (1.0 + kappa)).abs() < 0.3);
        assert!((sigma[(2, 2)] - (0.25 + kappa)).abs() < 0.2);
        // Off-diagonals near zero.
        assert!(sigma[(0, 1)].abs() < 0.3);
    }

    #[test]
    fn result_is_always_spd() {
        // Even with degenerate samples (all identical) the floor keeps
        // the matrix positive-definite.
        let identical = vec![Vector::from([1.0, 2.0, 3.0]); 20];
        let sigma = pseudo_feedback_covariance(&identical);
        assert!(sigma.cholesky().is_ok());
        // Collinear samples (rank 1).
        let collinear: Vec<Vector<3>> = (0..20)
            .map(|i| Vector::from([i as f64, 2.0 * i as f64, 3.0 * i as f64]))
            .collect();
        assert!(pseudo_feedback_covariance(&collinear).cholesky().is_ok());
    }

    #[test]
    fn kappa_balances_determinants() {
        // Paper's design goal: |Σ̃| = |κI| when Σ̃ is well-conditioned.
        let samples = gaussian_cloud(10_000, [2.0, 1.5, 1.0], 3);
        let k = samples.len() as f64;
        let mean = samples.iter().fold(Vector::<3>::ZERO, |a, s| a + *s) * (1.0 / k);
        let mut tilde = Matrix::<3>::ZERO;
        for s in &samples {
            let d = *s - mean;
            for i in 0..3 {
                for j in 0..3 {
                    tilde[(i, j)] += d[i] * d[j];
                }
            }
        }
        tilde = tilde.scale(1.0 / k);
        let kappa = tilde.determinant().powf(1.0 / 3.0);
        let kappa_eye_det = kappa.powi(3);
        assert!(
            (tilde.determinant() - kappa_eye_det).abs() < 1e-9 * tilde.determinant(),
            "determinant balance broken"
        );
    }

    #[test]
    fn narrow_neighborhoods_give_narrow_gaussians() {
        // The §VI-B phenomenon: k-NN samples from a thin cluster produce
        // a large λ⊥/λ∥ ratio for Σ = Σ̃ + κI.
        let samples = gaussian_cloud(20, [5.0, 0.2, 0.2], 5);
        let sigma = pseudo_feedback_covariance(&samples);
        let eig = sigma.symmetric_eigen().unwrap();
        let ratio = eig.max_eigenvalue() / eig.min_eigenvalue();
        assert!(ratio > 3.0, "condition number {ratio} not narrow");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_samples() {
        pseudo_feedback_covariance::<3>(&[]);
    }
}
