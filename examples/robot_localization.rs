//! Moving-robot localization — the paper's motivating Example 1.
//!
//! A robot navigates a mapped space. Its pose estimate comes from
//! probabilistic localization and is a Gaussian whose covariance grows
//! between position fixes and shrinks when a landmark is observed. At
//! each step the robot asks: *"which charging beacons are within 10
//! meters of me, with at least 30 % certainty?"* — a probabilistic range
//! query with the robot as the imprecise query object.
//!
//! ```text
//! cargo run --release --example robot_localization
//! ```

use gaussian_prq::prelude::*;
use gaussian_prq::workloads::{simulate_trajectory, TrajectoryModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Charging beacons scattered over the operating area.
    let mut beacons: Vec<(Vector<2>, usize)> = Vec::new();
    let mut x = 17.0;
    for i in 0..400 {
        // Low-discrepancy-ish scatter.
        x = (x * 1.618_033_988_749) % 1.0e3;
        let y = ((i as f64 * 379.0) % 997.0) * 1.002;
        beacons.push((Vector::from([x, y]), i));
    }
    let tree = RTree::bulk_load(beacons, RStarParams::paper_default(2));
    println!("map holds {} charging beacons", tree.len());

    let delta = 60.0; // beacon reachable within 60 m
    let theta = 0.3; // want 30 % certainty
    let mut evaluator = MonteCarloEvaluator::new(50_000, 2026);
    let executor = PrqExecutor::new(StrategySet::ALL);

    // Dead-reckoning uncertainty model: odometry drift grows the pose
    // covariance along the heading; a landmark fix every 8 steps
    // collapses it (paper Fig. 1's growing/shrinking ellipses).
    let model = TrajectoryModel {
        along_track_drift: 4.5,
        fix_interval: 8,
        ..TrajectoryModel::default()
    };
    let trajectory = simulate_trajectory(&model, Vector::from([50.0, 400.0]), 0.3, 24, 5.0);

    println!("\n  t(s) |       pose estimate        | unc(m) | reachable beacons (p ≥ 30%)");
    println!("-------+----------------------------+--------+-----------------------------");
    for pose in trajectory {
        let query = PrqQuery::new(pose.mean, pose.covariance, delta, theta)?;
        let outcome = executor.execute(&tree, &query, &mut evaluator)?;
        let spread = pose.covariance.trace().sqrt();
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, id)| **id).collect();
        ids.sort_unstable();
        println!(
            "{:6.0} | ({:7.1}, {:7.1})         | {:6.1} | {} found, {} integrations: {:?}",
            pose.time,
            pose.mean[0],
            pose.mean[1],
            spread,
            ids.len(),
            outcome.stats.integrations,
            &ids[..ids.len().min(6)],
        );
    }

    // The punchline of the paper's Example 1: higher pose uncertainty
    // (larger Σ) changes which beacons pass the probability threshold —
    // a certainty-unaware range query would keep returning the same set.
    println!("\nWith growing pose uncertainty the certain answer set shrinks even");
    println!("though the nominal position barely moves — exactly why range");
    println!("queries must be probability-aware under imprecise localization.");
    Ok(())
}
