//! Location anonymity — the paper's §I privacy scenario.
//!
//! A user shares only an *obfuscated* location with a venue-finder
//! service: instead of exact coordinates, the service receives a Gaussian
//! whose spread is chosen by the user's privacy level. The service still
//! answers "which venues are probably within walking distance?" —
//! a probabilistic range query. This example also uses the cost model to
//! pick the cheapest strategy set per privacy level before executing.
//!
//! ```text
//! cargo run --release --example location_privacy
//! ```

use gaussian_prq::core::cost::{expected_integrations, region_volumes, DensityEstimate};
use gaussian_prq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // City venue database: clustered around a few districts.
    let venues = gaussian_prq::workloads::road_network_2d(20_000, 99);
    let tree = RTree::bulk_load(
        venues.into_iter().zip(0u32..).collect(),
        RStarParams::paper_default(2),
    );
    println!("venue database: {} points", tree.len());

    let true_location = Vector::from([420.0, 380.0]);
    let walking_range = 40.0; // δ
    let confidence = 0.2; // θ

    println!("\nprivacy |  σ (m) | answers | integr. | predicted | strategy chosen");
    println!("--------+--------+---------+---------+-----------+----------------");
    for (label, sigma_m) in [
        ("exact ", 1.0),
        ("street", 15.0),
        ("block ", 40.0),
        ("city-q", 120.0f64),
    ] {
        // The obfuscation the user's device applies: isotropic Gaussian
        // noise of scale σ. The service only ever sees (q, Σ).
        let reported_cov = Matrix::identity().scale(sigma_m * sigma_m);
        let query = PrqQuery::new(true_location, reported_cov, walking_range, confidence)?;

        // Cost-model-driven strategy choice.
        let volumes = region_volumes(&query, 7)?;
        let density = DensityEstimate::uniform(tree.len(), 1000.0 * 1000.0);
        let (best_name, best_set, predicted) = StrategySet::PAPER_COMBINATIONS
            .iter()
            .map(|(name, set)| (*name, *set, expected_integrations(&volumes, &density, *set)))
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .expect("six combinations");

        let mut eval = MonteCarloEvaluator::new(30_000, 2026);
        let outcome = PrqExecutor::new(best_set).execute(&tree, &query, &mut eval)?;
        println!(
            "{label}  | {sigma_m:6.0} | {:7} | {:7} | {predicted:9.0} | {best_name}",
            outcome.stats.answers, outcome.stats.integrations,
        );
    }

    println!("\nAs the privacy radius grows, the service's uncertainty region");
    println!("inflates: more candidates must be integrated, yet fewer venues");
    println!("clear the confidence threshold — quantifying the privacy/utility");
    println!("trade-off without the user ever revealing exact coordinates.");
    Ok(())
}
