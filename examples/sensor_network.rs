//! Mobile-sensor monitoring with degraded GPS — the paper's §I sensor
//! scenario, exercising the *uncertain targets* extension (§VII).
//!
//! A fleet of mobile sensors reports positions at a low update rate to
//! save power. Between updates, each sensor's believed position is a
//! Gaussian whose spread grows with the time since its last fix. A
//! monitoring station (itself on a vehicle with imprecise GPS) asks
//! which sensors are within communication range δ with probability ≥ θ —
//! a range query where *both* sides are uncertain, solved exactly by
//! covariance convolution.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use gaussian_prq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 0x5eed_u64;
    let mut next = move || {
        // xorshift for a tiny self-contained PRNG.
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };

    // 1. The fleet: 500 sensors; staleness of the last GPS fix drives
    //    each sensor's positional uncertainty (5 m fresh … 60 m stale).
    let sensors: Vec<UncertainTarget<2>> = (0..500)
        .map(|_| {
            let staleness = next(); // 0 = fresh fix, 1 = very stale
            let spread = 5.0 + 55.0 * staleness;
            UncertainTarget {
                mean: Vector::from([next() * 2_000.0, next() * 2_000.0]),
                covariance: Matrix::identity().scale(spread * spread),
            }
        })
        .collect();
    println!(
        "fleet: {} mobile sensors with per-sensor uncertainty",
        sensors.len()
    );

    // 2. The monitoring vehicle: position from its own filter.
    let station = PrqQuery::new(
        Vector::from([1_000.0, 1_000.0]),
        gaussian_prq::workloads::rotated_covariance_2d(40.0, 15.0, 0.6),
        250.0, // radio range δ = 250 m
        0.5,   // want ≥ 50 % link probability
    )?;
    println!(
        "station at {} (anisotropic uncertainty), radio range {} m, θ = {}",
        station.center(),
        station.delta(),
        station.theta()
    );

    // 3. Evaluate the uncertain-vs-uncertain range query. The BF bounds
    //    on each convolved distribution decide most sensors without any
    //    Monte-Carlo work.
    let mut evaluator = MonteCarloEvaluator::new(50_000, 99);
    let outcome = prq_uncertain_targets(&station, &sensors, &mut evaluator)?;
    println!(
        "\n{} sensors reachable with ≥ 50 % probability",
        outcome.answers.len()
    );
    println!(
        "decided by bounds alone: {} / {}   (integrations: {})",
        outcome.decided_by_bounds,
        sensors.len(),
        outcome.integrations
    );

    // 4. Show how target staleness changes the verdict for two sensors
    //    at the same nominal distance.
    let probe_mean = *station.center() + Vector::from([230.0, 0.0]);
    for (label, spread) in [("fresh fix (5 m)", 5.0), ("stale fix (60 m)", 60.0f64)] {
        let target = UncertainTarget {
            mean: probe_mean,
            covariance: Matrix::identity().scale(spread * spread),
        };
        let p = qualification_probability(&station, &target, &mut evaluator)?;
        println!("probe sensor with {label:>16}: link probability {p:.3}");
    }
    println!("\nSame nominal position, different staleness ⇒ different answer —");
    println!("the covariance convolution Σ + Σ_o makes that exact, not heuristic.");
    Ok(())
}
