//! Quickstart: issue one probabilistic range query end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gaussian_prq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Build a database of exactly-located objects (a synthetic road
    //    network, as in the paper's experiments) and index it.
    // ------------------------------------------------------------------
    let points = gaussian_prq::workloads::road_network_2d(10_000, 42);
    let records: Vec<(Vector<2>, usize)> = points.into_iter().zip(0..).collect();
    let tree = RTree::bulk_load(records, RStarParams::paper_default(2));
    println!(
        "indexed {} objects (R*-tree height {}, {} nodes)",
        tree.len(),
        tree.height(),
        tree.node_count()
    );

    // ------------------------------------------------------------------
    // 2. Describe the query object: position known only as N(q, Σ).
    //    This is the paper's default query (Eq. 34 with γ = 10,
    //    δ = 25, θ = 0.01).
    // ------------------------------------------------------------------
    let query = PrqQuery::new(
        Vector::from([500.0, 500.0]),
        gaussian_prq::workloads::eq34_covariance(10.0),
        25.0,
        0.01,
    )?;
    println!(
        "query: center {}, delta {}, theta {}",
        query.center(),
        query.delta(),
        query.theta()
    );

    // ------------------------------------------------------------------
    // 3. Execute with each strategy combination and compare the work.
    // ------------------------------------------------------------------
    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut evaluator = MonteCarloEvaluator::new(20_000, 7);
        let outcome = PrqExecutor::new(set).execute(&tree, &query, &mut evaluator)?;
        let s = &outcome.stats;
        println!(
            "{name:>6}: {} answers | {} phase-1 candidates, {} integrations, \
             {} accepted free, {} node accesses | {:.1} ms",
            s.answers,
            s.phase1_candidates,
            s.integrations,
            s.accepted_without_integration,
            s.node_accesses,
            s.total_time().as_secs_f64() * 1e3,
        );
    }

    // ------------------------------------------------------------------
    // 4. Cross-check against the naive full-scan baseline.
    // ------------------------------------------------------------------
    let mut evaluator = MonteCarloEvaluator::new(20_000, 7);
    let naive = execute_naive(&tree, &query, &mut evaluator);
    println!(
        " naive: {} answers | {} integrations | {:.1} ms",
        naive.stats.answers,
        naive.stats.integrations,
        naive.stats.total_time().as_secs_f64() * 1e3,
    );
    Ok(())
}
