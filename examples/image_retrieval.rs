//! Example-based multimedia retrieval in 9-D feature space — the paper's
//! second application (§I) and Experiment II scenario (§VI).
//!
//! The user supplies a few example images ("pseudo feedback": the 20
//! nearest neighbors of a randomly chosen image). The system models the
//! user's interest as a Gaussian over color-moment feature space whose
//! covariance blends the sample covariance with the Euclidean metric
//! (Eq. 35), then retrieves images probably within feature distance
//! δ = 0.7 of the interest point with probability ≥ θ.
//!
//! ```text
//! cargo run --release --example image_retrieval
//! ```

use gaussian_prq::prelude::*;
use gaussian_prq::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Corel-like 9-D feature collection (reduced from the paper's
    // 68,040 for example runtime; the bench reproduces full scale).
    let n = 20_000;
    let features = workloads::corel_like_9d(n, 11);
    let records: Vec<(Vector<9>, usize)> = features.iter().copied().zip(0..).collect();
    let tree = RTree::bulk_load(records, RStarParams::paper_default(9));
    println!("indexed {n} image feature vectors (9-D)");

    // Pick a random query image and gather pseudo-feedback: its 20-NN
    // (including itself), exactly as §VI-A.
    let query_idx = 4_321;
    let query_vec = features[query_idx];
    let k = 20;
    let knn = tree.nearest_neighbors(&query_vec, k);
    let samples: Vec<Vector<9>> = knn.iter().map(|(_, p, _)| **p).collect();
    println!(
        "pseudo-feedback: {}-NN of image #{query_idx} (max sample distance {:.3})",
        k,
        knn.last().unwrap().0
    );

    // Eq. 35: Σ = Σ̃ + κI with κ = |Σ̃|^{1/9}.
    let sigma = workloads::pseudo_feedback_covariance(&samples);
    let eig = sigma.symmetric_eigen()?;
    println!(
        "interest model: narrow Gaussian, condition number λ_max/λ_min = {:.1}",
        eig.condition_number()
    );

    // The paper's query parameters: δ = 0.7, θ = 40 %.
    let query = PrqQuery::new(query_vec, sigma, 0.7, 0.4)?;

    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut evaluator = MonteCarloEvaluator::new(20_000, 5);
        let outcome = PrqExecutor::new(set).execute(&tree, &query, &mut evaluator)?;
        let s = &outcome.stats;
        println!(
            "{name:>6}: {} images retrieved | {} candidates → {} integrations",
            s.answers, s.phase1_candidates, s.integrations,
        );
    }

    // Ranking variant (the paper's future-work probabilistic NN): the 5
    // most probable matches regardless of threshold.
    let mut evaluator = MonteCarloEvaluator::new(20_000, 5);
    let (top, stats) = probabilistic_knn(&tree, &query, 5, &mut evaluator);
    println!(
        "\ntop-5 by qualification probability (examined {} candidates):",
        stats.candidates_examined
    );
    for (rank, r) in top.iter().enumerate() {
        println!(
            "  #{rank}: image {:>6} at distance {:.3}, p = {:.3}",
            r.data, r.distance, r.probability
        );
    }
    Ok(())
}
