//! Continuous monitoring of a moving, imprecisely-localized object —
//! the paper's robot scenario run as a *query stream* using the
//! [`MonitoringSession`] extension: U-catalogs built once, enter/leave
//! deltas per step, and an `EXPLAIN`-style plan printed for the first
//! pose.
//!
//! ```text
//! cargo run --release --example moving_monitor
//! ```

use gaussian_prq::core::cost::DensityEstimate;
use gaussian_prq::core::explain::explain;
use gaussian_prq::prelude::*;
use gaussian_prq::workloads::{road_network_2d, simulate_trajectory, TrajectoryModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Static obstacle/POI database.
    let points = road_network_2d(30_000, 7);
    let tree = RTree::bulk_load(
        points.into_iter().zip(0u32..).collect(),
        RStarParams::paper_default(2),
    );
    println!("database: {} points of interest", tree.len());

    let delta = 45.0;
    let theta = 0.25;
    let model = TrajectoryModel {
        step_length: 30.0,
        turn_rate: 0.09,
        fix_interval: 6,
        ..TrajectoryModel::default()
    };
    let trajectory = simulate_trajectory(&model, Vector::from([150.0, 200.0]), 0.5, 18, 2.0);

    // EXPLAIN the first pose's query before running anything.
    let first = &trajectory[0];
    let probe_query = PrqQuery::new(first.mean, first.covariance, delta, theta)?;
    let density = DensityEstimate::uniform(tree.len(), 1_000.0 * 1_000.0);
    println!("\n{}", explain(&probe_query, StrategySet::ALL, &density)?);

    // Stream the trajectory through a monitoring session.
    let mut session = MonitoringSession::new(
        &tree,
        delta,
        theta,
        StrategySet::ALL,
        MonteCarloEvaluator::new(30_000, 11),
    )?;
    println!("  t(s) | in-range | entered | left | integrations");
    println!("-------+----------+---------+------+-------------");
    for pose in &trajectory {
        let step = session.step(pose.mean, pose.covariance)?;
        println!(
            "{:6.0} | {:8} | {:7} | {:4} | {:8}",
            pose.time,
            step.answers.len(),
            step.entered.len(),
            step.left.len(),
            step.stats.integrations,
        );
    }
    println!(
        "\nsession total: {} steps, mean {:.0} integrations/step, {} answers reported",
        session.steps,
        session.mean_integrations(),
        session.total.answers,
    );
    Ok(())
}
